#include "util/md5.h"

#include <gtest/gtest.h>

#include <string>

namespace gw::util {
namespace {

// RFC 1321 appendix A.5 test suite.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex_digest(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex_digest("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex_digest("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex_digest("message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex_digest("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::hex_digest(
          "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::hex_digest("1234567890123456789012345678901234567890"
                            "1234567890123456789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  const std::string payload(10000, 'x');
  Md5 incremental;
  for (std::size_t offset = 0; offset < payload.size(); offset += 37) {
    incremental.update(std::string_view(payload).substr(offset, 37));
  }
  EXPECT_EQ(Md5::to_hex(incremental.finish()), Md5::hex_digest(payload));
}

TEST(Md5, BlockBoundarySizes) {
  // Exercise the padding branch on both sides of the 56-byte boundary.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string payload(n, 'q');
    Md5 incremental;
    incremental.update(payload);
    EXPECT_EQ(Md5::to_hex(incremental.finish()), Md5::hex_digest(payload))
        << "length " << n;
  }
}

TEST(Md5, UpdateAfterFinishThrows) {
  Md5 md5;
  md5.update("abc");
  (void)md5.finish();
  EXPECT_THROW(md5.update("more"), std::logic_error);
}

TEST(Md5, FinishTwiceThrows) {
  Md5 md5;
  (void)md5.finish();
  EXPECT_THROW((void)md5.finish(), std::logic_error);
}

TEST(Md5, CorruptionChangesDigest) {
  // The deployment's update pipeline (§VI) relies on any corruption
  // changing the digest.
  std::string firmware(4096, 'f');
  const std::string original = Md5::hex_digest(firmware);
  firmware[2048] ^= 0x01;
  EXPECT_NE(Md5::hex_digest(firmware), original);
}

}  // namespace
}  // namespace gw::util
