#include "util/stats.h"

#include <gtest/gtest.h>

namespace gw::util {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 0; i <= 100; ++i) s.add(double(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(95.0), 95.0);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 2.5);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(12.5);
  EXPECT_DOUBLE_EQ(s.mean(), 12.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 12.5);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.percentile(50.0), std::logic_error);
}

TEST(Summary, BadPercentileThrows) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101.0), std::invalid_argument);
}

TEST(Summary, AddAfterQuery) {
  Summary s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

}  // namespace
}  // namespace gw::util
