#include "util/strings.h"

#include <gtest/gtest.h>

namespace gw::util {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("state=2,voltage=12.4", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "state=2");
  EXPECT_EQ(parts[1], "voltage=12.4");
}

TEST(Strings, SplitEmptyFields) {
  const auto parts = split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(Strings, SplitNoSeparator) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("dgps_20090922.dat", "dgps_"));
  EXPECT_FALSE(starts_with("log.txt", "dgps_"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(12.5, 1), "12.5");
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 3), "-0.500");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("42", 5), "   42");
  EXPECT_EQ(pad_right("42", 5), "42   ");
  EXPECT_EQ(pad_left("123456", 3), "123456");
}

}  // namespace
}  // namespace gw::util
