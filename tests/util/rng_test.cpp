#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gw::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministicAndIndependentOfDraws) {
  Rng parent{7};
  const Rng fork_before = parent.fork("wind");
  parent.next_u64();
  parent.next_u64();
  const Rng fork_after = parent.fork("wind");
  Rng a = fork_before;
  Rng b = fork_after;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkStreamsAreDistinct) {
  Rng parent{7};
  Rng wind = parent.fork("wind");
  Rng solar = parent.fork("solar");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (wind.next_u64() == solar.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{123};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{123};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(11.5, 12.5);
    EXPECT_GE(v, 11.5);
    EXPECT_LT(v, 12.5);
  }
}

TEST(Rng, UniformIndexInBounds) {
  Rng rng{9};
  std::vector<int> histogram(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto index = rng.uniform_index(7);
    ASSERT_LT(index, 7u);
    ++histogram[index];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, 10000, 500);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{11};
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.133)) ++hits;
  }
  // The paper's summer probe-link loss: 400/3000 ≈ 0.133.
  EXPECT_NEAR(double(hits) / kN, 0.133, 0.005);
}

TEST(Rng, NormalMoments) {
  Rng rng{13};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double variance = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(variance), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng{17};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Rng, WeibullMean) {
  Rng rng{19};
  double sum = 0.0;
  constexpr int kN = 100000;
  // Weibull(k=2, lambda=6.5): mean = lambda * Gamma(1.5) ≈ 5.76.
  for (int i = 0; i < kN; ++i) sum += rng.weibull(2.0, 6.5);
  EXPECT_NEAR(sum / kN, 6.5 * 0.886227, 0.06);
}

TEST(Rng, StateRoundTripsMidStream) {
  Rng original{42};
  for (int i = 0; i < 57; ++i) original.next_u64();
  const RngState captured = original.state();

  // The continuation the original produces from this exact position...
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 100; ++i) expected.push_back(original.next_u64());

  // ...must be reproduced by any Rng restored to the captured state, no
  // matter what it was doing before.
  Rng restored{9999};
  restored.next_u64();
  restored.restore_state(captured);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored.next_u64(), expected[std::size_t(i)]);
  }
}

TEST(Rng, RestoredStreamForksLikeTheOriginal) {
  // fork() keys off the construction seed, so a restored stream must hand
  // out the same child streams the original would (the snapshot layer
  // depends on this: a restored component can keep forking by name).
  Rng original{7};
  original.next_u64();
  const RngState captured = original.state();
  Rng restored{12345};
  restored.restore_state(captured);
  Rng a = original.fork("wind");
  Rng b = restored.fork("wind");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StateCapturesPositionNotJustSeed) {
  Rng rng{42};
  const RngState at_start = rng.state();
  rng.next_u64();
  const RngState after_draw = rng.state();
  EXPECT_EQ(at_start.seed, after_draw.seed);
  EXPECT_NE(at_start.words, after_draw.words);
}

TEST(Rng, Fnv1aStableValues) {
  // Known FNV-1a 64-bit test vector.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("wind"), fnv1a("solar"));
}

}  // namespace
}  // namespace gw::util
