#include "util/result.h"

#include <gtest/gtest.h>

namespace gw::util {
namespace {

Result<int> parse_positive(int x) {
  if (x <= 0) return make_error("not positive");
  return x;
}

TEST(Result, OkPath) {
  const auto r = parse_positive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 5);
}

TEST(Result, ErrorPath) {
  const auto r = parse_positive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "not positive");
}

TEST(Result, ValueOnErrorThrows) {
  const auto r = parse_positive(-1);
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Result, ValueOr) {
  EXPECT_EQ(parse_positive(-1).value_or(99), 99);
  EXPECT_EQ(parse_positive(3).value_or(99), 3);
}

TEST(Result, TakeMovesOut) {
  Result<std::string> r = std::string("payload");
  const std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, Failure) {
  const Status s = Status::failure("gprs registration failed");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().message, "gprs registration failed");
}

}  // namespace
}  // namespace gw::util
