#include "util/logging.h"

#include <gtest/gtest.h>

namespace gw::util {
namespace {

TEST(Logging, RecordsAndBytes) {
  Logger logger;
  logger.info(1000, "gps", "fix acquired");
  logger.warn(2000, "gprs", "registration retry");
  EXPECT_EQ(logger.records().size(), 2u);
  EXPECT_GT(logger.pending_bytes(), 0u);
  EXPECT_EQ(logger.pending_bytes(), logger.total_bytes_ever());
}

TEST(Logging, ThresholdDropsAtSource) {
  Logger logger;
  logger.set_threshold(LogLevel::kWarn);
  logger.debug(0, "probe", "raw frame dump");
  logger.info(0, "probe", "reading 57");
  logger.warn(0, "probe", "missing packet 12");
  EXPECT_EQ(logger.records().size(), 1u);
  EXPECT_EQ(logger.dropped_records(), 2u);
}

TEST(Logging, DrainRendersAndClears) {
  Logger logger;
  logger.error(5000, "scp", "transfer hung");
  const std::string text = logger.drain();
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("scp: transfer hung"), std::string::npos);
  EXPECT_TRUE(logger.records().empty());
  EXPECT_EQ(logger.pending_bytes(), 0u);
  // total_bytes_ever survives the drain (lifetime accounting).
  EXPECT_GT(logger.total_bytes_ever(), 0u);
}

TEST(Logging, DrainedBytesMatchAccounting) {
  Logger logger;
  logger.info(1, "a", "x");
  logger.info(22222222222222, "component", "a longer message body");
  const std::size_t pending = logger.pending_bytes();
  const std::string text = logger.drain();
  EXPECT_EQ(text.size(), pending);
}

TEST(Logging, CountAtLeast) {
  Logger logger;
  logger.debug(0, "c", "d");
  logger.info(0, "c", "i");
  logger.warn(0, "c", "w");
  logger.error(0, "c", "e");
  EXPECT_EQ(logger.count_at_least(LogLevel::kDebug), 4u);
  EXPECT_EQ(logger.count_at_least(LogLevel::kWarn), 2u);
  EXPECT_EQ(logger.count_at_least(LogLevel::kError), 1u);
}

TEST(Logging, VerboseFirstContactScenario) {
  // §VI: first contact with a probe after months can produce >1 MB of log.
  // At full verbosity we reproduce that; with the threshold raised the
  // volume collapses — the paper's remedy.
  Logger verbose;
  for (int i = 0; i < 14000; ++i) {
    verbose.debug(i, "probe21",
                  "rx frame seq=" + std::to_string(i) +
                      " rssi=-97 payload=0011223344556677");
  }
  EXPECT_GT(verbose.pending_bytes(), 1'000'000u);

  Logger quiet;
  quiet.set_threshold(LogLevel::kInfo);
  for (int i = 0; i < 12000; ++i) {
    quiet.debug(i, "probe21", "rx frame ...");
  }
  quiet.info(12000, "probe21", "12000 readings fetched");
  EXPECT_LT(quiet.pending_bytes(), 200u);
}

}  // namespace
}  // namespace gw::util
