#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace gw::util {
namespace {

TEST(Crc32, KnownVectors) {
  // Standard IEEE CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xe8b7be43u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string packet(256, 'p');
  const std::uint32_t original = crc32(packet);
  for (std::size_t byte : {0u, 100u, 255u}) {
    std::string corrupted = packet;
    corrupted[byte] ^= 0x40;
    EXPECT_NE(crc32(corrupted), original) << "byte " << byte;
  }
}

TEST(Crc32, SeedChaining) {
  // Chained CRC over two halves must differ from unseeded CRC of the second
  // half alone.
  const std::string a = "first-half";
  const std::string b = "second-half";
  const std::uint32_t chained = crc32(b, crc32(a));
  EXPECT_NE(chained, crc32(b));
}

}  // namespace
}  // namespace gw::util
