// Golden event-order property test for the staged event kernel.
//
// The kernel's contract is a total order — (timestamp, then scheduling
// sequence) — that must survive any mix of staged bursts, steady-state
// rescheduling, cancellation, and run_until checkpoints. This test replays
// an adversarial randomized workload against both sim::Simulation and a
// deliberately naive reference kernel (linear scan for the minimum, the
// obviously-correct O(n^2) implementation of the same contract) and
// requires the two execution traces to match event for event.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulation.h"
#include "util/rng.h"

namespace gw::sim {
namespace {

// Obviously-correct reference: every pending event in one vector, the next
// event found by scanning for the minimum (at, seq).
class ReferenceKernel {
 public:
  explicit ReferenceKernel(std::int64_t start) : now_(start) {}

  [[nodiscard]] std::int64_t now() const { return now_; }

  std::uint64_t schedule(std::int64_t at, std::function<void()> fn) {
    events_.push_back(Event{at, next_seq_, std::move(fn), false});
    return next_seq_++;
  }

  void cancel(std::uint64_t seq) {
    for (Event& event : events_) {
      if (event.seq == seq) {
        event.cancelled = true;
        return;
      }
    }
  }

  void run_until(std::int64_t deadline) {
    while (true) {
      const std::size_t index = find_min();
      if (index == events_.size() || events_[index].at > deadline) break;
      fire(index);
    }
    if (now_ < deadline) now_ = deadline;
  }

  void run_all() {
    while (true) {
      const std::size_t index = find_min();
      if (index == events_.size()) break;
      fire(index);
    }
  }

 private:
  struct Event {
    std::int64_t at;
    std::uint64_t seq;
    std::function<void()> fn;
    bool cancelled;
  };

  std::size_t find_min() {
    std::size_t best = events_.size();
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (events_[i].cancelled) continue;
      if (best == events_.size() || events_[i].at < events_[best].at ||
          (events_[i].at == events_[best].at &&
           events_[i].seq < events_[best].seq)) {
        best = i;
      }
    }
    return best;
  }

  void fire(std::size_t index) {
    now_ = events_[index].at;
    const std::function<void()> fn = std::move(events_[index].fn);
    events_.erase(events_.begin() + std::ptrdiff_t(index));
    fn();
  }

  std::vector<Event> events_;
  std::uint64_t next_seq_ = 1;
  std::int64_t now_ = 0;
};

// Drives one kernel through the scripted workload. Kernel is duck-typed:
// schedule(at, fn) -> id, cancel(id), run_until(deadline), run_all(),
// now(). Every decision is drawn from the same seeded Rng stream, so both
// kernels see the identical operation sequence; the only free variable is
// the order the kernel fires events in — which is exactly what the trace
// records.
template <typename Kernel, typename ScheduleAt, typename RunUntil>
std::vector<int> run_workload(std::uint64_t seed, Kernel& kernel,
                              ScheduleAt schedule_at, RunUntil run_until,
                              std::function<void()> run_all,
                              std::function<std::int64_t()> now) {
  util::Rng rng{seed};
  std::vector<int> trace;
  std::vector<std::uint64_t> live_ids;
  int next_label = 0;

  // Self-rescheduling events exercise the staged-while-draining path: a
  // fired event schedules a child at a deterministic offset (ties with
  // other children are common on purpose).
  std::function<void(int, int)> fire_and_maybe_respawn =
      [&](int label, int respawns) {
        trace.push_back(label);
        if (respawns > 0) {
          const std::int64_t at = now() + 1 + (label * 13) % 7;
          const int child = 100000 + label;
          live_ids.push_back(schedule_at(at, [&, child, respawns] {
            fire_and_maybe_respawn(child, respawns - 1);
          }));
        }
      };

  for (int round = 0; round < 40; ++round) {
    // Burst: a batch of events over a narrow window (lots of exact ties).
    const int burst = 5 + int(rng.uniform_index(60));
    for (int i = 0; i < burst; ++i) {
      const std::int64_t at = now() + std::int64_t(rng.uniform_index(50));
      const int label = next_label++;
      const int respawns = rng.bernoulli(0.2) ? 2 : 0;
      live_ids.push_back(schedule_at(at, [&, label, respawns] {
        fire_and_maybe_respawn(label, respawns);
      }));
    }
    // Cancel a few known ids (some already fired — must be no-ops) and a
    // couple of ids that were never issued.
    const int cancels = int(rng.uniform_index(8));
    for (int i = 0; i < cancels && !live_ids.empty(); ++i) {
      kernel.cancel(live_ids[rng.uniform_index(live_ids.size())]);
    }
    kernel.cancel(0xdeadbeefdeadbeefULL);
    kernel.cancel(std::uint64_t(rng.uniform_index(1u << 30)));
    // Advance to a checkpoint, or fully drain.
    if (rng.bernoulli(0.25)) {
      run_all();
    } else {
      run_until(now() + std::int64_t(rng.uniform_index(40)));
    }
  }
  run_all();
  return trace;
}

std::vector<int> trace_simulation(std::uint64_t seed) {
  Simulation simulation{SimTime{0}};
  return run_workload(
      seed, simulation,
      [&](std::int64_t at, std::function<void()> fn) {
        return simulation.schedule_at(SimTime{at}, std::move(fn));
      },
      [&](std::int64_t deadline) { simulation.run_until(SimTime{deadline}); },
      [&] { simulation.run_all(); },
      [&] { return simulation.now().millis_since_epoch(); });
}

std::vector<int> trace_reference(std::uint64_t seed) {
  ReferenceKernel kernel{0};
  return run_workload(
      seed, kernel,
      [&](std::int64_t at, std::function<void()> fn) {
        return kernel.schedule(at, std::move(fn));
      },
      [&](std::int64_t deadline) { kernel.run_until(deadline); },
      [&] { kernel.run_all(); }, [&] { return kernel.now(); });
}

class EventOrderGolden : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventOrderGolden, MatchesReferenceKernel) {
  const std::vector<int> expected = trace_reference(GetParam());
  const std::vector<int> actual = trace_simulation(GetParam());
  ASSERT_GT(expected.size(), 100u) << "workload degenerated";
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(AdversarialSeeds, EventOrderGolden,
                         ::testing::Values(1u, 7u, 42u, 2008u, 0xabcdefu));

}  // namespace
}  // namespace gw::sim
