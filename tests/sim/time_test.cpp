#include "sim/time.h"

#include <gtest/gtest.h>

namespace gw::sim {
namespace {

TEST(SimTimeTest, EpochIsZero) {
  EXPECT_EQ(kEpoch.millis_since_epoch(), 0);
  const DateTime dt = to_datetime(kEpoch);
  EXPECT_EQ(dt.year, 1970);
  EXPECT_EQ(dt.month, 1);
  EXPECT_EQ(dt.day, 1);
  EXPECT_EQ(dt.hour, 0);
}

TEST(SimTimeTest, DurationConversions) {
  EXPECT_EQ(hours(2).millis(), 7'200'000);
  EXPECT_DOUBLE_EQ(hours(2).to_hours(), 2.0);
  EXPECT_DOUBLE_EQ(days(1).to_hours(), 24.0);
  EXPECT_DOUBLE_EQ(minutes(30).to_seconds(), 1800.0);
  EXPECT_EQ((minutes(30) * 48).millis(), days(1).millis());
  EXPECT_EQ((days(1) / 48).millis(), minutes(30).millis());
}

TEST(SimTimeTest, ArithmeticAndComparison) {
  const SimTime t = at_midnight(2009, 9, 22);
  const SimTime noon = t + hours(12);
  EXPECT_GT(noon, t);
  EXPECT_EQ((noon - t).to_hours(), 12.0);
  EXPECT_EQ(noon - hours(12), t);
}

TEST(CalendarTest, KnownDates) {
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(days_from_civil(1970, 1, 2), 1);
  EXPECT_EQ(days_from_civil(1969, 12, 31), -1);
  EXPECT_EQ(days_from_civil(2000, 3, 1), 11017);
  // Paper's Fig 5 window starts 22/09/2009.
  EXPECT_EQ(days_from_civil(2009, 9, 22), 14509);
}

TEST(CalendarTest, RoundTripThroughDateTime) {
  for (const auto& dt : {DateTime{2009, 9, 22, 12, 0, 0},
                         DateTime{2008, 2, 29, 23, 59, 59},
                         DateTime{1970, 1, 1, 0, 0, 0},
                         DateTime{2026, 7, 7, 6, 30, 15}}) {
    EXPECT_EQ(to_datetime(to_time(dt)), dt);
  }
}

TEST(CalendarTest, LeapYearHandling) {
  // 2008 is a leap year: Feb 29 exists and day-of-year shifts after it.
  EXPECT_EQ(day_of_year(at_midnight(2008, 2, 29)), 60);
  EXPECT_EQ(day_of_year(at_midnight(2008, 12, 31)), 366);
  EXPECT_EQ(day_of_year(at_midnight(2009, 12, 31)), 365);
}

TEST(CalendarTest, DayOfYear) {
  EXPECT_EQ(day_of_year(at_midnight(2009, 1, 1)), 1);
  EXPECT_EQ(day_of_year(at_midnight(2009, 9, 22)), 265);
}

TEST(CalendarTest, TimeOfDayAndStartOfDay) {
  const SimTime t = to_time(DateTime{2009, 9, 22, 13, 45, 30});
  EXPECT_DOUBLE_EQ(time_of_day(t).to_hours(), 13.0 + 45.0 / 60 + 30.0 / 3600);
  EXPECT_EQ(start_of_day(t), at_midnight(2009, 9, 22));
}

TEST(CalendarTest, FormatIso) {
  EXPECT_EQ(format_iso(to_time(DateTime{2009, 9, 22, 12, 0, 0})),
            "2009-09-22 12:00:00");
  EXPECT_EQ(format_iso(kEpoch), "1970-01-01 00:00:00");
}

TEST(CalendarTest, RtcResetSemantics) {
  // §IV: a station that last ran in 2009 but whose clock reads 1970 must
  // conclude the RTC reset. The comparison that detects it:
  const SimTime last_successful_run = at_midnight(2009, 9, 22);
  const SimTime rtc_after_brown_out = kEpoch;
  EXPECT_LT(rtc_after_brown_out, last_successful_run);
}

}  // namespace
}  // namespace gw::sim
