#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace gw::sim {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation simulation;
  std::vector<int> order;
  simulation.schedule_at(SimTime{300}, [&] { order.push_back(3); });
  simulation.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  simulation.schedule_at(SimTime{200}, [&] { order.push_back(2); });
  simulation.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, TiesBreakInSchedulingOrder) {
  Simulation simulation;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulation.schedule_at(SimTime{500}, [&order, i] { order.push_back(i); });
  }
  simulation.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation simulation{SimTime{1000}};
  SimTime seen{};
  simulation.schedule_in(Duration{500}, [&] { seen = simulation.now(); });
  simulation.run_all();
  EXPECT_EQ(seen, SimTime{1500});
  EXPECT_EQ(simulation.now(), SimTime{1500});
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation simulation{SimTime{1000}};
  EXPECT_THROW(simulation.schedule_at(SimTime{999}, [] {}),
               std::invalid_argument);
}

TEST(Simulation, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulation simulation;
  int fired = 0;
  simulation.schedule_at(SimTime{100}, [&] { ++fired; });
  simulation.schedule_at(SimTime{900}, [&] { ++fired; });
  simulation.run_until(SimTime{500});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulation.now(), SimTime{500});
  simulation.run_until(SimTime{1000});
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsScheduledDuringRunExecute) {
  Simulation simulation;
  int depth = 0;
  simulation.schedule_at(SimTime{10}, [&] {
    ++depth;
    simulation.schedule_in(Duration{10}, [&] { ++depth; });
  });
  simulation.run_all();
  EXPECT_EQ(depth, 2);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation simulation;
  bool fired = false;
  const EventId id = simulation.schedule_at(SimTime{50}, [&] { fired = true; });
  simulation.cancel(id);
  simulation.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelUnknownIdIsNoOp) {
  Simulation simulation;
  simulation.cancel(EventId{12345});
  bool fired = false;
  simulation.schedule_at(SimTime{1}, [&] { fired = true; });
  simulation.run_all();
  EXPECT_TRUE(fired);
}

TEST(Simulation, PeriodicSelfRescheduling) {
  Simulation simulation;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 48) simulation.schedule_in(minutes(30), tick);
  };
  simulation.schedule_in(minutes(30), tick);
  simulation.run_until(kEpoch + days(1));
  EXPECT_EQ(ticks, 48);  // one day of 30-minute voltage samples
}

TEST(Simulation, RunAllBudgetGuard) {
  Simulation simulation;
  std::function<void()> forever = [&] {
    simulation.schedule_in(Duration{1}, forever);
  };
  simulation.schedule_in(Duration{1}, forever);
  EXPECT_THROW(simulation.run_all(1000), std::runtime_error);
}

TEST(Simulation, EventsExecutedCounter) {
  Simulation simulation;
  for (int i = 0; i < 5; ++i) simulation.schedule_at(SimTime{i}, [] {});
  simulation.run_all();
  EXPECT_EQ(simulation.events_executed(), 5u);
}

// Regression for the pre-tombstone cancel() id leak: cancelling unknown or
// already-fired ids used to park them in a set forever, so pending() and
// empty() drifted for the rest of the run.
TEST(Simulation, PendingIsExactAfterSpuriousCancels) {
  Simulation simulation;
  const EventId fired = simulation.schedule_at(SimTime{1}, [] {});
  simulation.run_all();
  EXPECT_EQ(simulation.pending(), 0u);
  EXPECT_TRUE(simulation.empty());

  simulation.cancel(fired);             // already fired
  simulation.cancel(EventId{12345});    // never issued
  simulation.cancel(EventId{0});        // never issued
  EXPECT_EQ(simulation.pending(), 0u);
  EXPECT_TRUE(simulation.empty());

  const EventId live = simulation.schedule_at(SimTime{10}, [] {});
  EXPECT_EQ(simulation.pending(), 1u);
  simulation.cancel(live);
  simulation.cancel(live);  // double-cancel must not underflow the count
  EXPECT_EQ(simulation.pending(), 0u);
  EXPECT_TRUE(simulation.empty());
  simulation.run_all();
  EXPECT_EQ(simulation.events_executed(), 1u);
}

TEST(Simulation, MoveOnlyCallablesAreSchedulable) {
  Simulation simulation;
  int observed = 0;
  auto payload = std::make_unique<int>(7);
  simulation.schedule_at(
      SimTime{5}, [p = std::move(payload), &observed] { observed = *p; });
  simulation.run_all();
  EXPECT_EQ(observed, 7);
}

// A handle from a previous tenancy of a recycled slot must not cancel the
// new tenant (the generation check).
TEST(Simulation, StaleIdFromRecycledSlotIsHarmless) {
  Simulation simulation;
  const EventId old_id = simulation.schedule_at(SimTime{1}, [] {});
  simulation.run_all();  // slot freed back to the pool

  bool fired = false;
  simulation.schedule_at(SimTime{2}, [&] { fired = true; });  // reuses slot
  simulation.cancel(old_id);  // stale generation: must be a no-op
  simulation.run_all();
  EXPECT_TRUE(fired);
}

TEST(Simulation, CancelOwnEventFromItsCallbackIsNoOp) {
  Simulation simulation;
  EventId self{};
  int fired = 0;
  self = simulation.schedule_at(SimTime{1}, [&] {
    ++fired;
    simulation.cancel(self);  // already executing: must not corrupt state
  });
  simulation.schedule_at(SimTime{2}, [&] { ++fired; });
  simulation.run_all();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulation.pending(), 0u);
}

TEST(Simulation, CancelLaterEventFromEarlierCallback) {
  Simulation simulation;
  bool late_fired = false;
  const EventId late =
      simulation.schedule_at(SimTime{100}, [&] { late_fired = true; });
  simulation.schedule_at(SimTime{50}, [&] { simulation.cancel(late); });
  simulation.run_all();
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(simulation.events_executed(), 1u);
}

// Heavy interleaving of bursts, cancellations, and partial drains must keep
// pending() consistent with what actually fires.
TEST(Simulation, PendingTracksBurstsAndDrains) {
  Simulation simulation;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(simulation.schedule_at(SimTime{i % 10}, [&] { ++fired; }));
  }
  EXPECT_EQ(simulation.pending(), 100u);
  for (int i = 0; i < 100; i += 4) simulation.cancel(ids[std::size_t(i)]);
  EXPECT_EQ(simulation.pending(), 75u);
  simulation.run_until(SimTime{4});
  simulation.run_all();
  EXPECT_EQ(fired, 75);
  EXPECT_EQ(simulation.pending(), 0u);
}

}  // namespace
}  // namespace gw::sim
