#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace gw::sim {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation simulation;
  std::vector<int> order;
  simulation.schedule_at(SimTime{300}, [&] { order.push_back(3); });
  simulation.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  simulation.schedule_at(SimTime{200}, [&] { order.push_back(2); });
  simulation.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, TiesBreakInSchedulingOrder) {
  Simulation simulation;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulation.schedule_at(SimTime{500}, [&order, i] { order.push_back(i); });
  }
  simulation.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation simulation{SimTime{1000}};
  SimTime seen{};
  simulation.schedule_in(Duration{500}, [&] { seen = simulation.now(); });
  simulation.run_all();
  EXPECT_EQ(seen, SimTime{1500});
  EXPECT_EQ(simulation.now(), SimTime{1500});
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation simulation{SimTime{1000}};
  EXPECT_THROW(simulation.schedule_at(SimTime{999}, [] {}),
               std::invalid_argument);
}

TEST(Simulation, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulation simulation;
  int fired = 0;
  simulation.schedule_at(SimTime{100}, [&] { ++fired; });
  simulation.schedule_at(SimTime{900}, [&] { ++fired; });
  simulation.run_until(SimTime{500});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulation.now(), SimTime{500});
  simulation.run_until(SimTime{1000});
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsScheduledDuringRunExecute) {
  Simulation simulation;
  int depth = 0;
  simulation.schedule_at(SimTime{10}, [&] {
    ++depth;
    simulation.schedule_in(Duration{10}, [&] { ++depth; });
  });
  simulation.run_all();
  EXPECT_EQ(depth, 2);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation simulation;
  bool fired = false;
  const EventId id = simulation.schedule_at(SimTime{50}, [&] { fired = true; });
  simulation.cancel(id);
  simulation.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelUnknownIdIsNoOp) {
  Simulation simulation;
  simulation.cancel(EventId{12345});
  bool fired = false;
  simulation.schedule_at(SimTime{1}, [&] { fired = true; });
  simulation.run_all();
  EXPECT_TRUE(fired);
}

TEST(Simulation, PeriodicSelfRescheduling) {
  Simulation simulation;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 48) simulation.schedule_in(minutes(30), tick);
  };
  simulation.schedule_in(minutes(30), tick);
  simulation.run_until(kEpoch + days(1));
  EXPECT_EQ(ticks, 48);  // one day of 30-minute voltage samples
}

TEST(Simulation, RunAllBudgetGuard) {
  Simulation simulation;
  std::function<void()> forever = [&] {
    simulation.schedule_in(Duration{1}, forever);
  };
  simulation.schedule_in(Duration{1}, forever);
  EXPECT_THROW(simulation.run_all(1000), std::runtime_error);
}

TEST(Simulation, EventsExecutedCounter) {
  Simulation simulation;
  for (int i = 0; i < 5; ++i) simulation.schedule_at(SimTime{i}, [] {});
  simulation.run_all();
  EXPECT_EQ(simulation.events_executed(), 5u);
}

}  // namespace
}  // namespace gw::sim
