#include "sim/trace.h"

#include <gtest/gtest.h>

namespace gw::sim {
namespace {

TEST(Trace, AddAndRead) {
  Trace trace;
  trace.add("voltage", SimTime{0}, 12.4);
  trace.add("voltage", SimTime{1000}, 12.6);
  ASSERT_TRUE(trace.has_series("voltage"));
  EXPECT_EQ(trace.series("voltage").size(), 2u);
  EXPECT_DOUBLE_EQ(trace.series("voltage")[1].value, 12.6);
}

TEST(Trace, MissingSeriesThrows) {
  Trace trace;
  EXPECT_THROW(trace.series("nope"), std::out_of_range);
  EXPECT_FALSE(trace.has_series("nope"));
}

TEST(Trace, Statistics) {
  Trace trace;
  for (int i = 0; i < 5; ++i) {
    trace.add("s", SimTime{i}, double(i));  // 0 1 2 3 4
  }
  EXPECT_DOUBLE_EQ(trace.min_value("s"), 0.0);
  EXPECT_DOUBLE_EQ(trace.max_value("s"), 4.0);
  EXPECT_DOUBLE_EQ(trace.mean_value("s"), 2.0);
}

TEST(Trace, ValueAt) {
  Trace trace;
  trace.add("state", SimTime{0}, 2.0);
  trace.add("state", SimTime{5000}, 3.0);
  EXPECT_DOUBLE_EQ(trace.value_at("state", SimTime{4999}), 2.0);
  EXPECT_DOUBLE_EQ(trace.value_at("state", SimTime{5000}), 3.0);
  EXPECT_DOUBLE_EQ(trace.value_at("state", SimTime{99999}), 3.0);
}

TEST(Trace, ValueBeforeFirstPointThrows) {
  Trace trace;
  trace.add("state", SimTime{100}, 1.0);
  EXPECT_THROW(trace.value_at("state", SimTime{99}), std::out_of_range);
}

TEST(Trace, ValueAtExactlyFirstPoint) {
  // The boundary case: t equal to the first sample is in range, one
  // millisecond earlier is not.
  Trace trace;
  trace.add("state", SimTime{100}, 1.0);
  EXPECT_DOUBLE_EQ(trace.value_at("state", SimTime{100}), 1.0);
}

TEST(Trace, DeclaredSeriesIsVisibleButEmpty) {
  Trace trace;
  trace.declare("voltage");
  ASSERT_TRUE(trace.has_series("voltage"));
  EXPECT_TRUE(trace.series("voltage").empty());
  EXPECT_EQ(trace.series_names(), std::vector<std::string>{"voltage"});
}

TEST(Trace, EmptySeriesThrowsConsistently) {
  // Contract: every analysis helper throws std::out_of_range on an empty
  // series — not UB on front() or a silent NaN from 0/0.
  Trace trace;
  trace.declare("empty");
  EXPECT_THROW(trace.min_value("empty"), std::out_of_range);
  EXPECT_THROW(trace.max_value("empty"), std::out_of_range);
  EXPECT_THROW(trace.mean_value("empty"), std::out_of_range);
  EXPECT_THROW(trace.value_at("empty", SimTime{0}), std::out_of_range);
}

TEST(Trace, Annotations) {
  Trace trace;
  trace.annotate(SimTime{42}, "override released");
  ASSERT_EQ(trace.annotations().size(), 1u);
  EXPECT_EQ(trace.annotations()[0].text, "override released");
}

TEST(Trace, SeriesNamesSorted) {
  Trace trace;
  trace.add("b", SimTime{0}, 0);
  trace.add("a", SimTime{0}, 0);
  const auto names = trace.series_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // std::map keeps keys ordered
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace gw::sim
