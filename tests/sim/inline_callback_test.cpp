#include "sim/inline_callback.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>

namespace gw::sim {
namespace {

TEST(InlineCallback, SmallCaptureStaysInline) {
  int hits = 0;
  InlineCallback cb{[&hits] { ++hits; }};
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallback, CaptureAtSizeLimitStaysInline) {
  struct Fat {
    std::byte bytes[InlineCallback::kInlineSize - sizeof(int*)] = {};
    int* counter;
    void operator()() { ++*counter; }
  };
  static_assert(sizeof(Fat) == InlineCallback::kInlineSize);
  int hits = 0;
  InlineCallback cb{Fat{{}, &hits}};
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallback, OversizedCaptureFallsBackToHeap) {
  struct Huge {
    std::byte bytes[InlineCallback::kInlineSize + 1] = {};
    int* counter = nullptr;
    void operator()() { ++*counter; }
  };
  int hits = 0;
  Huge huge;
  huge.counter = &hits;
  InlineCallback cb{huge};
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallback, MoveOnlyCallable) {
  auto ptr = std::make_unique<int>(41);
  InlineCallback cb{[p = std::move(ptr)] { ++*p; }};
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();  // no observable side effect needed; must not crash or copy
}

TEST(InlineCallback, MoveTransfersOwnershipAndEmptiesSource) {
  int hits = 0;
  InlineCallback a{[&hits] { ++hits; }};
  InlineCallback b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallback, DestroysCaptureExactlyOnce) {
  struct Probe {
    int* destroyed;
    explicit Probe(int* d) : destroyed(d) {}
    Probe(Probe&& other) noexcept : destroyed(other.destroyed) {
      other.destroyed = nullptr;
    }
    ~Probe() {
      if (destroyed != nullptr) ++*destroyed;
    }
  };
  int destroyed = 0;
  {
    InlineCallback cb{[probe = Probe{&destroyed}] { (void)probe; }};
    InlineCallback moved{std::move(cb)};
    EXPECT_EQ(destroyed, 0);  // relocation must not count as destruction
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineCallback, InvokeAndResetLeavesEmpty) {
  int hits = 0;
  InlineCallback cb{[&hits] { ++hits; }};
  cb.invoke_and_reset();
  EXPECT_EQ(hits, 1);
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, EmplaceRebindsInPlace) {
  int first = 0;
  int second = 0;
  InlineCallback cb{[&first] { ++first; }};
  cb.emplace([&second] { ++second; });
  cb();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(InlineCallback, MoveAssignReleasesPreviousCapture) {
  int destroyed = 0;
  struct Probe {
    int* destroyed;
    explicit Probe(int* d) : destroyed(d) {}
    Probe(Probe&& other) noexcept : destroyed(other.destroyed) {
      other.destroyed = nullptr;
    }
    ~Probe() {
      if (destroyed != nullptr) ++*destroyed;
    }
  };
  InlineCallback cb{[probe = Probe{&destroyed}] { (void)probe; }};
  cb = InlineCallback{[] {}};
  EXPECT_EQ(destroyed, 1);
}

}  // namespace
}  // namespace gw::sim
