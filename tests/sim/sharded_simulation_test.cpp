// ShardedSimulation: the conservative time-window protocol. These tests
// drive the kernel with synthetic actors (no station machinery) and pin
// the three guarantees docs/PARALLELISM.md argues for: kernel-exact
// message delivery, partition-invariant ordering of the shared ledger,
// and the lookahead contract (violations throw, never silently arrive
// late).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/sharded_simulation.h"

namespace gw {
namespace {

using sim::Duration;
using sim::ShardedConfig;
using sim::ShardedSimulation;
using sim::SimTime;

constexpr SimTime kStart{1'000'000};

ShardedConfig make_config(std::size_t shards, unsigned workers,
                          Duration lookahead = sim::minutes(5)) {
  ShardedConfig config;
  config.shards = shards;
  config.workers = workers;
  config.lookahead = lookahead;
  config.start = kStart;
  return config;
}

// A synthetic fleet: `actors` periodic processes, actor a on shard
// a % shards, each appending to a shared ledger via post_apply and to a
// sibling's private inbox via kernel-exact post_from. The rendered ledger
// must not depend on the partition.
struct Harness {
  explicit Harness(std::size_t shards, unsigned workers, std::size_t actors)
      : sharded(make_config(shards, workers)), inboxes(actors) {
    for (std::size_t a = 0; a < actors; ++a) {
      const std::size_t shard = a % sharded.shard_count();
      schedule_tick(a, shard, 0);
    }
  }

  void schedule_tick(std::size_t actor, std::size_t shard, int tick) {
    // Staggered periods so actors collide at some timestamps (tick 0 of
    // everyone, and various resonances) — the interesting ordering cases.
    const Duration period = sim::minutes(7 + double(actor));
    sharded.shard(shard).schedule_at(
        kStart + period * tick + sim::seconds(double(actor)),
        [this, actor, shard, tick] {
          const SimTime now = sharded.shard(shard).now();
          const std::size_t peer = (actor + 1) % inboxes.size();
          const std::size_t peer_shard = peer % sharded.shard_count();
          const SimTime deliver = now + sharded.lookahead();
          sharded.post_from(shard, peer_shard, deliver,
                            "actor" + std::to_string(actor),
                            [this, peer, actor, deliver] {
                              inboxes[peer].push_back(
                                  {deliver.millis_since_epoch(), actor});
                            });
          sharded.post_apply_from(
              shard, deliver, "actor" + std::to_string(actor),
              [this, actor, tick](SimTime) {
                ledger.push_back({actor, tick});
              });
          if (tick < 20) schedule_tick(actor, shard, tick + 1);
        });
  }

  [[nodiscard]] std::string render() const {
    std::string out;
    for (const auto& [actor, tick] : ledger) {
      out += std::to_string(actor) + ":" + std::to_string(tick) + ";";
    }
    for (std::size_t a = 0; a < inboxes.size(); ++a) {
      out += "|";
      for (const auto& [at, from] : inboxes[a]) {
        out += std::to_string(at) + "<" + std::to_string(from) + ";";
      }
    }
    out += "#" + std::to_string(sharded.events_executed());
    return out;
  }

  ShardedSimulation sharded;
  std::vector<std::pair<std::size_t, int>> ledger;
  std::vector<std::vector<std::pair<std::int64_t, std::size_t>>> inboxes;
};

std::string run_harness(std::size_t shards, unsigned workers) {
  Harness harness(shards, workers, 5);
  harness.sharded.run_until(kStart + sim::hours(4));
  return harness.render();
}

TEST(ShardedSimulation, LedgerIsIdenticalAcrossShardAndWorkerCounts) {
  const std::string reference = run_harness(1, 1);
  EXPECT_EQ(reference, run_harness(2, 1));
  EXPECT_EQ(reference, run_harness(2, 2));
  EXPECT_EQ(reference, run_harness(4, 2));
  EXPECT_EQ(reference, run_harness(5, 8));
}

TEST(ShardedSimulation, DeadlinePatternDoesNotChangeDelivery) {
  // Same work, chopped into ragged run_until deadlines that truncate
  // windows mid-flight. Barrier *times* differ; message delivery must not.
  Harness whole(3, 2, 4);
  whole.sharded.run_until(kStart + sim::hours(4));
  Harness ragged(3, 2, 4);
  ragged.sharded.run_until(kStart + sim::minutes(13));
  ragged.sharded.run_until(kStart + sim::minutes(121));
  ragged.sharded.run_until(kStart + sim::hours(2.7));
  ragged.sharded.run_until(kStart + sim::hours(4));
  EXPECT_EQ(whole.render(), ragged.render());
}

TEST(ShardedSimulation, MessagesDeliverAtExactlyTheirTimestamp) {
  ShardedSimulation sharded{make_config(2, 2, sim::minutes(1))};
  // Shard 1 logs its clock around the delivery instant; the message (sent
  // from shard 0, landing mid-window on shard 1) must interleave exactly
  // at its timestamp, not at a barrier.
  std::vector<std::int64_t> observed;
  const SimTime send_at = kStart + sim::seconds(30);
  const SimTime deliver_at = send_at + sim::minutes(1);
  for (int s = -2; s <= 2; ++s) {
    sharded.shard(1).schedule_at(deliver_at + sim::seconds(s), [&observed,
                                                               &sharded] {
      observed.push_back(sharded.shard(1).now().millis_since_epoch());
    });
  }
  bool delivered = false;
  sharded.shard(0).schedule_at(send_at, [&] {
    sharded.post_from(0, 1, deliver_at, "probe", [&observed, &delivered] {
      delivered = true;
      observed.push_back(-1);  // marks the delivery slot
    });
  });
  sharded.run_until(kStart + sim::minutes(5));
  ASSERT_TRUE(delivered);
  // -1 sits between the t+0s and t+1s samples: the message runs at
  // exactly deliver_at (same millisecond as the t+0 sample, which keeps
  // its earlier sequence number), never at a barrier.
  const std::vector<std::int64_t> expected{
      (deliver_at - sim::seconds(2)).millis_since_epoch(),
      (deliver_at - sim::seconds(1)).millis_since_epoch(),
      deliver_at.millis_since_epoch(),
      -1,
      (deliver_at + sim::seconds(1)).millis_since_epoch(),
      (deliver_at + sim::seconds(2)).millis_since_epoch(),
  };
  EXPECT_EQ(observed, expected);
}

TEST(ShardedSimulation, LookaheadViolationsThrow) {
  ShardedSimulation sharded{make_config(2, 1, sim::minutes(5))};
  bool threw = false;
  sharded.shard(0).schedule_at(kStart + sim::minutes(1), [&] {
    try {
      sharded.post_from(0, 1, kStart + sim::minutes(2), "cheater", [] {});
    } catch (const std::invalid_argument&) {
      threw = true;
    }
  });
  sharded.run_until(kStart + sim::minutes(10));
  EXPECT_TRUE(threw);

  // Coordinator posts must land strictly after the current barrier.
  EXPECT_THROW(sharded.post(0, sharded.now(), "late", [] {}),
               std::invalid_argument);
  EXPECT_THROW(
      sharded.post_apply(sharded.now(), "late", [](SimTime) {}),
      std::invalid_argument);
  EXPECT_THROW(sharded.post(7, sharded.now() + sim::hours(1), "x", [] {}),
               std::invalid_argument);
}

TEST(ShardedSimulation, BarrierHookSeesEveryWindowBoundary) {
  ShardedSimulation sharded{make_config(2, 1, sim::minutes(10))};
  std::vector<std::int64_t> barriers;
  sharded.set_barrier_hook([&barriers](SimTime at) {
    barriers.push_back(at.millis_since_epoch());
  });
  sharded.run_until(kStart + sim::minutes(25));
  const std::vector<std::int64_t> expected{
      (kStart + sim::minutes(10)).millis_since_epoch(),
      (kStart + sim::minutes(20)).millis_since_epoch(),
      (kStart + sim::minutes(25)).millis_since_epoch(),
  };
  EXPECT_EQ(barriers, expected);
  EXPECT_EQ(sharded.windows_run(), 3u);
}

TEST(ShardedSimulation, HookPostsFeedLaterWindows) {
  // A hook that relays: each barrier posts a kernel event 1.5 windows
  // out, mimicking the fleet's drain. Count deliveries.
  ShardedSimulation sharded{make_config(2, 1, sim::minutes(10))};
  int delivered = 0;
  sharded.set_barrier_hook([&](SimTime at) {
    if (at >= kStart + sim::hours(1)) return;
    sharded.post(1, at + sim::minutes(15), "relay",
                 [&delivered] { ++delivered; });
  });
  sharded.run_until(kStart + sim::hours(1));
  // Barriers at 10..50 min posted, delivering at 25..65; the 65-min one
  // is still pending when the run stops at 60.
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(sharded.messages_pending(), 1u);
  sharded.run_until(kStart + sim::minutes(70));
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(sharded.messages_pending(), 0u);
  EXPECT_EQ(sharded.messages_posted(), 5u);
  EXPECT_EQ(sharded.messages_delivered(), 5u);
}

TEST(ShardedSimulation, StatsCountWindowsAndEvents) {
  ShardedSimulation sharded{make_config(3, 2, sim::minutes(30))};
  int fired = 0;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    sharded.shard(s).schedule_at(kStart + sim::minutes(double(5 + s)),
                                 [&fired] { ++fired; });
  }
  sharded.run_until(kStart + sim::hours(1));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sharded.events_executed(), 3u);
  EXPECT_EQ(sharded.windows_run(), 2u);
  EXPECT_EQ(sharded.now(), kStart + sim::hours(1));
}

}  // namespace
}  // namespace gw
