#include "hw/serial_link.h"

#include <gtest/gtest.h>

namespace gw::hw {
namespace {

using namespace util::literals;

TEST(SerialLink, NominalFileTakesAbout28Seconds) {
  // Calibration behind the §VI backlog limits: ~257 files per 2 h window.
  SerialLink link{util::Rng{1}};
  const auto duration = link.transfer_duration(165_KiB);
  EXPECT_NEAR(duration.to_seconds(), 28.0, 1.0);
  const int per_window = int(sim::hours(2).millis() / duration.millis());
  EXPECT_NEAR(per_window, 257, 8);
}

TEST(SerialLink, DurationScalesWithSize) {
  SerialLink link{util::Rng{1}};
  EXPECT_LT(link.transfer_duration(80_KiB),
            link.transfer_duration(200_KiB));
  // Handshake floor for tiny files.
  EXPECT_GE(link.transfer_duration(1_B), sim::milliseconds(1500));
}

TEST(SerialLink, ReliableByDefault) {
  SerialLink link{util::Rng{2}};
  for (int i = 0; i < 100; ++i) {
    const auto outcome = link.attempt_transfer(165_KiB);
    EXPECT_TRUE(outcome.success);
    EXPECT_EQ(outcome.elapsed, link.transfer_duration(165_KiB));
  }
  EXPECT_EQ(link.transfers(), 100);
  EXPECT_EQ(link.faults(), 0);
}

TEST(SerialLink, IntermittentCableFaults) {
  SerialLinkConfig config;
  config.fault_probability = 0.4;  // §VI fault injection
  SerialLink link{util::Rng{3}, config};
  int failures = 0;
  for (int i = 0; i < 500; ++i) {
    const auto outcome = link.attempt_transfer(165_KiB);
    if (!outcome.success) {
      ++failures;
      // Partial time burned, never more than a full transfer.
      EXPECT_GE(outcome.elapsed, sim::milliseconds(1500));
      EXPECT_LE(outcome.elapsed, link.transfer_duration(165_KiB));
    }
  }
  EXPECT_NEAR(failures / 500.0, 0.4, 0.06);
  EXPECT_EQ(link.faults(), failures);
}

}  // namespace
}  // namespace gw::hw
