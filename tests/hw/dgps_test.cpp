#include "hw/dgps.h"

#include <gtest/gtest.h>

#include "env/environment.h"

namespace gw::hw {
namespace {

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig config;
  power::PowerSystem power{simulation, environment, config};
  DgpsReceiver dgps{simulation, power, util::Rng{3}};
};

TEST(Dgps, AutoStartsReadingOnPower) {
  Fixture f;
  bool completed = false;
  f.dgps.power_on([&] { completed = true; });
  EXPECT_TRUE(f.dgps.powered());
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 3.6);  // Table 1
  f.simulation.run_until(f.simulation.now() + sim::seconds(308));
  EXPECT_TRUE(completed);
  EXPECT_EQ(f.dgps.stored_files(), 1u);
  EXPECT_EQ(f.dgps.readings_taken(), 1);
}

TEST(Dgps, PowerCutMidReadingStoresNothing) {
  Fixture f;
  bool completed = false;
  f.dgps.power_on([&] { completed = true; });
  f.simulation.run_until(f.simulation.now() + sim::seconds(100));
  f.dgps.power_off();
  f.simulation.run_until(f.simulation.now() + sim::seconds(400));
  EXPECT_FALSE(completed);
  EXPECT_EQ(f.dgps.stored_files(), 0u);
}

TEST(Dgps, FileSizeNearPaperMean) {
  Fixture f;
  // 30 readings; mean size should be ~165 KB with 12% jitter (§III).
  for (int i = 0; i < 30; ++i) {
    f.dgps.power_on();
    f.simulation.run_until(f.simulation.now() + sim::seconds(308));
    f.dgps.power_off();
    f.simulation.run_until(f.simulation.now() + sim::minutes(10));
  }
  ASSERT_EQ(f.dgps.stored_files(), 30u);
  const double mean_kib = f.dgps.stored_bytes().kib() / 30.0;
  EXPECT_NEAR(mean_kib, 165.0, 12.0);
}

TEST(Dgps, FetchOldestIsFifo) {
  Fixture f;
  for (int i = 0; i < 3; ++i) {
    f.dgps.power_on();
    f.simulation.run_until(f.simulation.now() + sim::seconds(308));
    f.dgps.power_off();
    f.simulation.run_until(f.simulation.now() + sim::hours(2));
  }
  auto first = f.dgps.fetch_oldest();
  auto second = f.dgps.fetch_oldest();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_LT(first.value().name, second.value().name);  // ISO names sort by time
  EXPECT_EQ(f.dgps.stored_files(), 1u);
}

TEST(Dgps, FetchFromEmptyFails) {
  Fixture f;
  EXPECT_FALSE(f.dgps.fetch_oldest().ok());
}

TEST(Dgps, FetchDurationIsCalibrated) {
  Fixture f;
  // 28 s/file so a 2-hour window holds ~257 files — the §VI backlog limits.
  EXPECT_EQ(f.dgps.fetch_duration(), sim::seconds(28));
  EXPECT_EQ(std::int64_t(sim::hours(2).millis() /
                         f.dgps.fetch_duration().millis()),
            257);
}

TEST(Dgps, TimeFixRequiresPower) {
  Fixture f;
  EXPECT_FALSE(f.dgps.time_fix().ok());
}

TEST(Dgps, TimeFixUsuallySucceedsAndIsAccurate) {
  Fixture f;
  f.dgps.power_on();
  int successes = 0;
  for (int i = 0; i < 200; ++i) {
    const auto fix = f.dgps.time_fix();
    if (fix.ok()) {
      ++successes;
      // GPS time is authoritative; the fix lands within the acquisition
      // window of true time.
      EXPECT_LE((fix.value() - f.simulation.now()).to_seconds(), 90.0);
    }
  }
  EXPECT_NEAR(successes / 200.0, 0.92, 0.06);
}

TEST(Dgps, SkyModelDrivesFileSizeAndFix) {
  Fixture f;
  DgpsReceiver dgps{f.simulation, f.power, util::Rng{3}, DgpsConfig{},
                    &f.environment.gps_sky()};
  // Sizes track satellite visibility rather than pure noise.
  for (int i = 0; i < 10; ++i) {
    dgps.power_on();
    f.simulation.run_until(f.simulation.now() + sim::seconds(308));
    dgps.power_off();
    f.simulation.run_until(f.simulation.now() + sim::hours(2));
  }
  ASSERT_EQ(dgps.stored_files(), 10u);
  const double mean_kib = dgps.stored_bytes().kib() / 10.0;
  EXPECT_NEAR(mean_kib, 165.0, 40.0);
  EXPECT_GT(dgps.satellites_visible(), 0);
  // Fixes work under an open ice-cap sky.
  dgps.power_on();
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    if (dgps.time_fix().ok()) ++ok;
  }
  EXPECT_GT(ok, 35);
}

TEST(Dgps, State3EnergyBudgetMatchesPaper) {
  // 12 readings/day x 308 s at 3.6 W ≈ 1.03 h/day ⇒ 36 Ah lasts ~117 days.
  const double on_hours = 12.0 * 308.0 / 3600.0;
  const double amps = 3.6 / 12.0;
  const double days = 36.0 / (amps * on_hours);
  EXPECT_NEAR(days, 117.0, 1.0);
}

}  // namespace
}  // namespace gw::hw
