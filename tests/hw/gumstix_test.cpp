#include "hw/gumstix.h"

#include <gtest/gtest.h>

#include "env/environment.h"

namespace gw::hw {
namespace {

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig config;
  power::PowerSystem power{simulation, environment, config};
};

TEST(Gumstix, StartsOff) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  EXPECT_EQ(gumstix.state(), Gumstix::State::kOff);
  EXPECT_FALSE(gumstix.running());
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 0.0);
}

TEST(Gumstix, BootTakesConfiguredTime) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  const sim::SimTime booted = gumstix.power_on();
  EXPECT_EQ(booted - f.simulation.now(), sim::seconds(25));
  EXPECT_EQ(gumstix.state(), Gumstix::State::kBooting);
  f.simulation.run_until(booted);
  EXPECT_TRUE(gumstix.running());
}

TEST(Gumstix, DrawsTableOnePowerWhileOn) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  gumstix.power_on();
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 0.9);  // Table 1
  gumstix.power_off();
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 0.0);
}

TEST(Gumstix, PowerOnWhileRunningIsIdempotent) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  f.simulation.run_until(gumstix.power_on());
  ASSERT_TRUE(gumstix.running());
  const sim::SimTime again = gumstix.power_on();
  EXPECT_EQ(again, f.simulation.now());
  EXPECT_EQ(gumstix.boot_count(), 1);
}

TEST(Gumstix, PowerCutDuringBootAborts) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  const sim::SimTime booted = gumstix.power_on();
  f.simulation.run_until(f.simulation.now() + sim::seconds(10));
  gumstix.power_off();
  f.simulation.run_until(booted + sim::seconds(1));
  EXPECT_EQ(gumstix.state(), Gumstix::State::kOff);
  EXPECT_FALSE(gumstix.running());
}

TEST(Gumstix, UptimeAccumulatesAcrossWindows) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  for (int day = 0; day < 3; ++day) {
    gumstix.power_on();
    f.simulation.run_until(f.simulation.now() + sim::hours(1));
    gumstix.power_off();
    f.simulation.run_until(f.simulation.now() + sim::hours(23));
  }
  EXPECT_EQ(gumstix.boot_count(), 3);
  EXPECT_NEAR(gumstix.uptime().to_hours(), 3.0, 1e-9);
}

TEST(Gumstix, UptimeIncludesCurrentSession) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  gumstix.power_on();
  f.simulation.run_until(f.simulation.now() + sim::minutes(30));
  EXPECT_NEAR(gumstix.uptime().to_minutes(), 30.0, 1e-9);
}

}  // namespace
}  // namespace gw::hw
