#include "hw/gumstix.h"

#include <gtest/gtest.h>

#include "env/environment.h"

namespace gw::hw {
namespace {

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig config;
  power::PowerSystem power{simulation, environment, config};
};

TEST(Gumstix, StartsOff) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  EXPECT_EQ(gumstix.state(), Gumstix::State::kOff);
  EXPECT_FALSE(gumstix.running());
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 0.0);
}

TEST(Gumstix, BootTakesConfiguredTime) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  const sim::SimTime booted = gumstix.power_on();
  EXPECT_EQ(booted - f.simulation.now(), sim::seconds(25));
  EXPECT_EQ(gumstix.state(), Gumstix::State::kBooting);
  f.simulation.run_until(booted);
  EXPECT_TRUE(gumstix.running());
}

TEST(Gumstix, DrawsTableOnePowerWhileOn) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  gumstix.power_on();
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 0.9);  // Table 1
  gumstix.power_off();
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 0.0);
}

TEST(Gumstix, PowerOnWhileRunningIsIdempotent) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  f.simulation.run_until(gumstix.power_on());
  ASSERT_TRUE(gumstix.running());
  const sim::SimTime again = gumstix.power_on();
  EXPECT_EQ(again, f.simulation.now());
  EXPECT_EQ(gumstix.boot_count(), 1);
}

TEST(Gumstix, PowerCutDuringBootAborts) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  const sim::SimTime booted = gumstix.power_on();
  f.simulation.run_until(f.simulation.now() + sim::seconds(10));
  gumstix.power_off();
  f.simulation.run_until(booted + sim::seconds(1));
  EXPECT_EQ(gumstix.state(), Gumstix::State::kOff);
  EXPECT_FALSE(gumstix.running());
}

TEST(Gumstix, UptimeAccumulatesAcrossWindows) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  for (int day = 0; day < 3; ++day) {
    gumstix.power_on();
    f.simulation.run_until(f.simulation.now() + sim::hours(1));
    gumstix.power_off();
    f.simulation.run_until(f.simulation.now() + sim::hours(23));
  }
  EXPECT_EQ(gumstix.boot_count(), 3);
  EXPECT_NEAR(gumstix.uptime().to_hours(), 3.0, 1e-9);
}

TEST(Gumstix, UptimeIncludesCurrentSession) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  gumstix.power_on();
  f.simulation.run_until(f.simulation.now() + sim::minutes(30));
  EXPECT_NEAR(gumstix.uptime().to_minutes(), 30.0, 1e-9);
}

// --- DVFS (docs/ENERGY.md) -------------------------------------------------

TEST(GumstixDvfs, TopPointIsDefaultAndDrawsTableOneBitwise) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  EXPECT_EQ(gumstix.selected_point(), gumstix.frequency_plan().size() - 1);
  EXPECT_EQ(gumstix.cpu_scale(), 1.0);
  f.simulation.run_until(gumstix.power_on());
  ASSERT_TRUE(gumstix.running());
  // Top point: exactly the Table 1 draw, not an approximation of it.
  EXPECT_EQ(f.power.total_load_power().value(), 0.9);
}

TEST(GumstixDvfs, DrawFollowsFrequencyTimesVoltageSquared) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  const auto& plan = gumstix.frequency_plan();
  const auto& top = plan.back();
  f.simulation.run_until(gumstix.power_on());
  for (std::size_t p = 0; p < plan.size(); ++p) {
    gumstix.set_frequency_index(p);
    const double volt_ratio = plan[p].core_volts.value() / top.core_volts.value();
    const double expected =
        0.9 * (plan[p].mhz / top.mhz) * volt_ratio * volt_ratio;
    EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), expected);
  }
  // The 200 MHz / 1.0 V point: 0.9 * 0.5 * (1/1.3)^2 ~= 266 mW.
  gumstix.set_frequency_index(0);
  EXPECT_NEAR(f.power.total_load_power().value(), 0.2663, 5e-4);
}

TEST(GumstixDvfs, CpuScaleStretchesComputeDurations) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  // Top point: durations come back bitwise untouched.
  EXPECT_EQ(gumstix.scaled(sim::seconds(8)), sim::seconds(8));
  gumstix.set_frequency_index(0);  // 200 of 400 MHz
  EXPECT_DOUBLE_EQ(gumstix.cpu_scale(), 2.0);
  EXPECT_EQ(gumstix.scaled(sim::seconds(8)), sim::seconds(16));
  gumstix.set_frequency_index(1);  // 300 of 400 MHz
  EXPECT_EQ(gumstix.scaled(sim::seconds(9)).millis(), 12000);
}

TEST(GumstixDvfs, SelectionWhileOffLatchesForNextRun) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  gumstix.set_frequency_index(0);
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 0.0);  // still off
  const sim::SimTime booted = gumstix.power_on();
  // Boot burns full power regardless of the selected point.
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 0.9);
  f.simulation.run_until(booted);
  ASSERT_TRUE(gumstix.running());
  // The latched slow point takes effect on entering the run state.
  EXPECT_LT(f.power.total_load_power().value(), 0.3);
  gumstix.power_off();
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 0.0);
}

TEST(GumstixDvfs, SwitchingWhileRunningIsAnActivityTransition) {
  Fixture f;
  Gumstix gumstix{f.simulation, f.power};
  f.simulation.run_until(gumstix.power_on());
  const energy::ComponentModel* component = f.power.find_component("gumstix");
  ASSERT_NE(component, nullptr);
  EXPECT_EQ(component->state(component->activity()).name, "run@400MHz");
  gumstix.set_frequency_index(1);
  EXPECT_EQ(component->state(component->activity()).name, "run@300MHz");
  EXPECT_THROW(gumstix.set_frequency_index(7), std::out_of_range);
  // The failed selection changed nothing.
  EXPECT_EQ(gumstix.selected_point(), 1u);
}

}  // namespace
}  // namespace gw::hw
