#include "hw/gumsense_bus.h"

#include <gtest/gtest.h>

#include "core/schedule.h"
#include "env/environment.h"

namespace gw::hw {
namespace {

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig config;
  power::PowerSystem power{simulation, environment, config};
  Msp430 msp{simulation, power, util::Rng{7}};
};

TEST(GumsenseBus, ReadSamplesDrainsRing) {
  Fixture f;
  GumsenseBus bus{f.msp, util::Rng{1}};
  f.simulation.run_until(f.simulation.now() + sim::days(1));
  const auto samples = bus.read_samples();
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.value().size(), 48u);
  EXPECT_EQ(f.msp.pending_samples(), 0u);
}

TEST(GumsenseBus, SetScheduleInstallsWake) {
  Fixture f;
  GumsenseBus bus{f.msp, util::Rng{1}};
  const auto schedule =
      core::DaySchedule::for_state(core::PowerState::kState2,
                                   sim::hours(12));
  ASSERT_TRUE(bus.set_schedule(schedule).ok());
  ASSERT_TRUE(f.msp.wake_schedule().has_value());
  EXPECT_EQ(*f.msp.wake_schedule(), sim::hours(12));
}

TEST(GumsenseBus, RtcRoundTrip) {
  Fixture f;
  GumsenseBus bus{f.msp, util::Rng{1}};
  f.simulation.run_until(f.simulation.now() + sim::days(10));
  const auto before = bus.read_rtc();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(bus.set_rtc(f.simulation.now()).ok());
  EXPECT_EQ(f.msp.rtc_error_ms(), 0);
}

TEST(GumsenseBus, RetriesAbsorbOccasionalNaks) {
  Fixture f;
  GumsenseBusConfig config;
  config.nak_probability = 0.3;
  GumsenseBus bus{f.msp, util::Rng{3}, config};
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!bus.read_rtc().ok()) ++failures;
  }
  // P(fail) = 0.3^4 ≈ 0.008.
  EXPECT_LT(failures, 6);
  EXPECT_GT(bus.naks(), 30);
}

TEST(GumsenseBus, DeadBusSurfacesErrors) {
  Fixture f;
  GumsenseBusConfig config;
  config.nak_probability = 1.0;
  GumsenseBus bus{f.msp, util::Rng{3}, config};
  EXPECT_FALSE(bus.read_samples().ok());
  EXPECT_FALSE(bus.set_schedule(core::DaySchedule{}).ok());
  EXPECT_FALSE(bus.read_rtc().ok());
  EXPECT_FALSE(bus.set_rtc(f.simulation.now()).ok());
  // The MSP state was never touched.
  EXPECT_FALSE(f.msp.wake_schedule().has_value());
}

}  // namespace
}  // namespace gw::hw
