#include "hw/gprs_modem.h"

#include <gtest/gtest.h>

#include "env/environment.h"

namespace gw::hw {
namespace {

using namespace util::literals;

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig config;
  power::PowerSystem power{simulation, environment, config};
  GprsModem modem{simulation, power, util::Rng{5}};
};

TEST(GprsModem, TableOneCharacteristics) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.modem.config().rate.value(), 5000.0);
  EXPECT_DOUBLE_EQ(f.modem.config().power.value(), 2.64);
  f.modem.power_on();
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 2.64);
}

TEST(GprsModem, TransferTimeMatchesRate) {
  Fixture f;
  // 165 KiB at 5000 bps with 12% overhead ≈ 302 s.
  const auto t = f.modem.transfer_time(165_KiB);
  EXPECT_NEAR(t.to_seconds(), 270.3 * 1.12, 1.0);
}

TEST(GprsModem, TransferRequiresPower) {
  Fixture f;
  const auto outcome = f.modem.attempt_transfer(10_KiB);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.sent.count(), 0);
}

TEST(GprsModem, SuccessfulTransfersCarryFullPayload) {
  Fixture f;
  f.modem.power_on();
  int successes = 0;
  for (int i = 0; i < 100; ++i) {
    const auto outcome = f.modem.attempt_transfer(50_KiB);
    if (outcome.success) {
      ++successes;
      EXPECT_EQ(outcome.sent, 50_KiB);
      EXPECT_GT(outcome.elapsed.to_seconds(), 35.0);  // registration floor
    }
  }
  // Registration 92%, ~1.4 min transfer at 0.4%/min drop ⇒ ~91% success.
  EXPECT_NEAR(successes / 100.0, 0.91, 0.08);
}

TEST(GprsModem, DropsLeavePartialProgress) {
  Fixture f;
  GprsConfig config;
  config.drop_per_minute = 0.5;  // hostile network
  GprsModem flaky{f.simulation, f.power, util::Rng{9}, config};
  flaky.power_on();
  bool saw_partial = false;
  for (int i = 0; i < 50; ++i) {
    const auto outcome = flaky.attempt_transfer(500_KiB);
    if (!outcome.success && outcome.sent.count() > 0) {
      saw_partial = true;
      EXPECT_LT(outcome.sent, 500_KiB);
    }
  }
  EXPECT_TRUE(saw_partial);
}

TEST(GprsModem, CostLedgerPerMiB) {
  Fixture f;
  GprsConfig config;
  config.registration_success = 1.0;
  config.drop_per_minute = 0.0;
  GprsModem reliable{f.simulation, f.power, util::Rng{9}, config};
  reliable.power_on();
  (void)reliable.attempt_transfer(util::mib(2.0));
  EXPECT_NEAR(reliable.data_cost(), 10.0, 0.01);  // 2 MiB x 5/MiB
  EXPECT_EQ(reliable.bytes_sent(), util::mib(2.0));
}

TEST(GprsModem, FailureCountersTrack) {
  Fixture f;
  GprsConfig config;
  config.registration_success = 0.0;
  GprsModem dead{f.simulation, f.power, util::Rng{9}, config};
  dead.power_on();
  for (int i = 0; i < 5; ++i) (void)dead.attempt_transfer(1_KiB);
  EXPECT_EQ(dead.sessions_attempted(), 5);
  EXPECT_EQ(dead.registration_failures(), 5);
  EXPECT_EQ(dead.bytes_sent().count(), 0);
}

TEST(GprsModem, ZeroByteTransferSucceedsAfterRegistration) {
  Fixture f;
  GprsConfig config;
  config.registration_success = 1.0;
  GprsModem reliable{f.simulation, f.power, util::Rng{9}, config};
  reliable.power_on();
  const auto outcome = reliable.attempt_transfer(0_B);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.elapsed, sim::seconds(35));
}

TEST(GprsModem, EnergyPerBitBeatsRadioModem) {
  // Table 1 arithmetic behind the architecture decision: GPRS moves a bit
  // for 2.64/5000 = 0.53 mJ; the radio modem needs 3.96/2000 = 1.98 mJ.
  const double gprs = 2.64 / 5000.0;
  const double radio = 3.96 / 2000.0;
  EXPECT_GT(radio / gprs, 2.0);  // §III's "twofold power saving" root
}

}  // namespace
}  // namespace gw::hw
