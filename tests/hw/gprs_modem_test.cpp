#include "hw/gprs_modem.h"

#include <gtest/gtest.h>

#include "env/environment.h"

namespace gw::hw {
namespace {

using namespace util::literals;

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig config;
  power::PowerSystem power{simulation, environment, config};
  GprsModem modem{simulation, power, util::Rng{5}};
};

TEST(GprsModem, TableOneCharacteristics) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.modem.config().rate.value(), 5000.0);
  EXPECT_DOUBLE_EQ(f.modem.config().power.value(), 2.64);
  f.modem.power_on();
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 2.64);
}

TEST(GprsModem, TransferTimeMatchesRate) {
  Fixture f;
  // 165 KiB at 5000 bps with 12% overhead ≈ 302 s.
  const auto t = f.modem.transfer_time(165_KiB);
  EXPECT_NEAR(t.to_seconds(), 270.3 * 1.12, 1.0);
}

TEST(GprsModem, TransferRequiresPower) {
  Fixture f;
  const auto outcome = f.modem.attempt_transfer(10_KiB);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.sent.count(), 0);
}

TEST(GprsModem, SuccessfulTransfersCarryFullPayload) {
  Fixture f;
  f.modem.power_on();
  int successes = 0;
  for (int i = 0; i < 100; ++i) {
    const auto outcome = f.modem.attempt_transfer(50_KiB);
    if (outcome.success) {
      ++successes;
      EXPECT_EQ(outcome.sent, 50_KiB);
      EXPECT_GT(outcome.elapsed.to_seconds(), 35.0);  // registration floor
    }
  }
  // Registration 92%, ~1.4 min transfer at 0.4%/min drop ⇒ ~91% success.
  EXPECT_NEAR(successes / 100.0, 0.91, 0.08);
}

TEST(GprsModem, DropsLeavePartialProgress) {
  Fixture f;
  GprsConfig config;
  config.drop_per_minute = 0.5;  // hostile network
  GprsModem flaky{f.simulation, f.power, util::Rng{9}, config};
  flaky.power_on();
  bool saw_partial = false;
  for (int i = 0; i < 50; ++i) {
    const auto outcome = flaky.attempt_transfer(500_KiB);
    if (!outcome.success && outcome.sent.count() > 0) {
      saw_partial = true;
      EXPECT_LT(outcome.sent, 500_KiB);
    }
  }
  EXPECT_TRUE(saw_partial);
}

TEST(GprsModem, CostLedgerPerMiB) {
  Fixture f;
  GprsConfig config;
  config.registration_success = 1.0;
  config.drop_per_minute = 0.0;
  GprsModem reliable{f.simulation, f.power, util::Rng{9}, config};
  reliable.power_on();
  (void)reliable.attempt_transfer(util::mib(2.0));
  EXPECT_NEAR(reliable.data_cost(), 10.0, 0.01);  // 2 MiB x 5/MiB
  EXPECT_EQ(reliable.bytes_sent(), util::mib(2.0));
}

TEST(GprsModem, FailureCountersTrack) {
  Fixture f;
  GprsConfig config;
  config.registration_success = 0.0;
  GprsModem dead{f.simulation, f.power, util::Rng{9}, config};
  dead.power_on();
  for (int i = 0; i < 5; ++i) (void)dead.attempt_transfer(1_KiB);
  EXPECT_EQ(dead.sessions_attempted(), 5);
  EXPECT_EQ(dead.registration_failures(), 5);
  EXPECT_EQ(dead.bytes_sent().count(), 0);
}

TEST(GprsModem, ZeroByteTransferSucceedsAfterRegistration) {
  Fixture f;
  GprsConfig config;
  config.registration_success = 1.0;
  GprsModem reliable{f.simulation, f.power, util::Rng{9}, config};
  reliable.power_on();
  const auto outcome = reliable.attempt_transfer(0_B);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.elapsed, sim::seconds(35));
}

TEST(GprsModem, HangDurationIsAKnobClampedByTheSessionCap) {
  // Regression for the hard-coded 24 h wedge: hang_duration is now config,
  // and the caller's session cap bounds it. The stall also *adds to* the
  // registration time instead of overwriting it.
  Fixture f;
  GprsConfig config;
  config.registration_success = 1.0;
  config.hang_per_session = 1.0;  // always wedges
  config.hang_duration = sim::hours(6);
  GprsModem wedged{f.simulation, f.power, util::Rng{9}, config};
  wedged.power_on();

  const auto uncapped = wedged.attempt_transfer(1_KiB);
  EXPECT_FALSE(uncapped.success);
  EXPECT_TRUE(uncapped.hung);
  EXPECT_EQ(uncapped.elapsed, config.registration_time + sim::hours(6));

  const auto capped = wedged.attempt_transfer(1_KiB, sim::minutes(20));
  EXPECT_TRUE(capped.hung);
  EXPECT_EQ(capped.elapsed, config.registration_time + sim::minutes(20));
  EXPECT_EQ(wedged.hangs(), 2);
  EXPECT_TRUE(wedged.ledger_consistent());
}

TEST(GprsModem, DropProbabilityClampedAtOne) {
  // Regression for the unclamped per-step Bernoulli: an injected hazard
  // past 1.0/minute must mean "drops immediately", not undefined draws.
  Fixture f;
  GprsConfig config;
  config.registration_success = 1.0;
  config.drop_per_minute = 25.0;  // far out of range
  GprsModem hostile{f.simulation, f.power, util::Rng{9}, config};
  hostile.power_on();
  const auto outcome = hostile.attempt_transfer(165_KiB);
  EXPECT_FALSE(outcome.success);
  // The drop lands inside the first minute-step of the walk.
  EXPECT_LE(outcome.elapsed,
            config.registration_time + sim::minutes(1));
  EXPECT_TRUE(hostile.ledger_consistent());
}

TEST(GprsModem, SessionLedgerReconciles) {
  // Every attempted session is exactly one of: registration failure, hang,
  // drop, success — across a stochastic mix.
  Fixture f;
  GprsConfig config;
  config.registration_success = 0.7;
  config.drop_per_minute = 0.05;
  config.hang_per_session = 0.1;
  GprsModem flaky{f.simulation, f.power, util::Rng{9}, config};
  flaky.power_on();
  for (int i = 0; i < 300; ++i) {
    (void)flaky.attempt_transfer(40_KiB, sim::minutes(30));
  }
  EXPECT_EQ(flaky.sessions_attempted(), 300);
  EXPECT_TRUE(flaky.ledger_consistent());
  EXPECT_GT(flaky.registration_failures(), 0);
  EXPECT_GT(flaky.hangs(), 0);
  EXPECT_GT(flaky.session_drops(), 0);
  EXPECT_GT(flaky.sessions_succeeded(), 0);
}

TEST(GprsModem, FaultWindowForcesRegistrationFailures) {
  Fixture f;
  fault::FaultPlan plan;
  plan.add(fault::FaultWindow{fault::FaultKind::kGprsOutage, sim::days(0),
                              sim::days(2), 1.0});
  fault::FaultOracle oracle{plan, f.simulation.now()};
  GprsConfig config;
  config.registration_success = 1.0;
  GprsModem modem{f.simulation, f.power, util::Rng{9}, config};
  modem.set_fault_oracle(&oracle);
  modem.power_on();
  // Inside the window: severity 1.0 composes to zero registration success.
  const auto during = modem.attempt_transfer(1_KiB);
  EXPECT_FALSE(during.success);
  EXPECT_EQ(modem.registration_failures(), 1);
  EXPECT_EQ(oracle.trips(fault::FaultKind::kGprsOutage), 1);
  // After the window the base hazard is back untouched.
  f.simulation.run_until(f.simulation.now() + sim::days(3));
  const auto after = modem.attempt_transfer(1_KiB);
  EXPECT_TRUE(after.success);
  EXPECT_TRUE(modem.ledger_consistent());
}

TEST(GprsModem, HoldPoweredAutoOffYieldsToExplicitOwnership) {
  Fixture f;
  GprsConfig config;
  GprsModem modem{f.simulation, f.power, util::Rng{9}, config};
  modem.hold_powered(sim::minutes(2));
  EXPECT_TRUE(modem.powered());
  // An explicit power_on in the meantime takes ownership: the pending
  // auto-off must not cut the new owner's session.
  f.simulation.run_until(f.simulation.now() + sim::minutes(1));
  modem.power_on();
  f.simulation.run_until(f.simulation.now() + sim::minutes(5));
  EXPECT_TRUE(modem.powered());
  modem.power_off();
  EXPECT_FALSE(modem.powered());
  // An undisturbed hold cuts itself off.
  modem.hold_powered(sim::minutes(2));
  f.simulation.run_until(f.simulation.now() + sim::minutes(5));
  EXPECT_FALSE(modem.powered());
}

TEST(GprsModem, EnergyPerBitBeatsRadioModem) {
  // Table 1 arithmetic behind the architecture decision: GPRS moves a bit
  // for 2.64/5000 = 0.53 mJ; the radio modem needs 3.96/2000 = 1.98 mJ.
  const double gprs = 2.64 / 5000.0;
  const double radio = 3.96 / 2000.0;
  EXPECT_GT(radio / gprs, 2.0);  // §III's "twofold power saving" root
}

}  // namespace
}  // namespace gw::hw
