#include "hw/sensors.h"

#include <gtest/gtest.h>

namespace gw::hw {
namespace {

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig config;
  power::PowerSystem power{simulation, environment, config};
};

std::vector<SensorReading>::const_iterator find(
    const std::vector<SensorReading>& readings, const std::string& name) {
  return std::find_if(readings.begin(), readings.end(),
                      [&](const auto& r) { return r.name == name; });
}

TEST(Sensors, BaseSuiteChannels) {
  Fixture f;
  SensorSuite suite{f.environment, f.power, util::Rng{2}};
  const auto readings = suite.read_all(f.simulation.now());
  EXPECT_EQ(readings.size(), 5u);
  for (const auto& name :
       {"air_temperature", "enclosure_temperature", "enclosure_humidity",
        "snow_level", "battery_voltage"}) {
    EXPECT_NE(find(readings, name), readings.end()) << name;
  }
}

TEST(Sensors, PitchRollExtensionAddsChannels) {
  Fixture f;
  SensorSuiteConfig config;
  config.has_pitch_roll = true;  // §VII suggested sensors
  SensorSuite suite{f.environment, f.power, util::Rng{2}, config};
  const auto readings = suite.read_all(f.simulation.now());
  EXPECT_EQ(readings.size(), 7u);
  EXPECT_NE(find(readings, "pitch"), readings.end());
  EXPECT_NE(find(readings, "roll"), readings.end());
}

TEST(Sensors, BatteryVoltagePlausible) {
  Fixture f;
  SensorSuite suite{f.environment, f.power, util::Rng{2}};
  const auto readings = suite.read_all(f.simulation.now());
  const auto it = find(readings, "battery_voltage");
  ASSERT_NE(it, readings.end());
  EXPECT_GT(it->value, 11.0);
  EXPECT_LT(it->value, 15.0);
}

TEST(Sensors, HumidityBounded) {
  Fixture f;
  SensorSuite suite{f.environment, f.power, util::Rng{2}};
  for (int day = 0; day < 30; ++day) {
    const auto readings =
        suite.read_all(f.simulation.now() + sim::days(day));
    const auto it = find(readings, "enclosure_humidity");
    ASSERT_NE(it, readings.end());
    EXPECT_GE(it->value, 20.0);
    EXPECT_LE(it->value, 100.0);
  }
}

TEST(Sensors, SnowLevelNonNegative) {
  Fixture f;
  SensorSuite suite{f.environment, f.power, util::Rng{2}};
  for (int day = 0; day < 120; ++day) {
    const auto readings =
        suite.read_all(f.simulation.now() + sim::days(day));
    const auto it = find(readings, "snow_level");
    ASSERT_NE(it, readings.end());
    EXPECT_GE(it->value, 0.0);
  }
}

TEST(Sensors, TiltDriftsFasterInMeltSeason) {
  Fixture f;
  SensorSuiteConfig config;
  config.has_pitch_roll = true;
  SensorSuite suite{f.environment, f.power, util::Rng{2}, config};
  // Winter months: little drift. (Walk chronologically: melt model is
  // forward-only.)
  sim::SimTime t = sim::at_midnight(2010, 1, 1);
  double winter_drift = 0.0;
  double prev = 0.0;
  for (int day = 0; day < 60; ++day) {
    (void)suite.read_all(t + sim::days(day));
    winter_drift += std::abs(suite.pitch_deg() - prev);
    prev = suite.pitch_deg();
  }
  double summer_drift = 0.0;
  t = sim::at_midnight(2010, 6, 15);
  for (int day = 0; day < 60; ++day) {
    (void)suite.read_all(t + sim::days(day));
    summer_drift += std::abs(suite.pitch_deg() - prev);
    prev = suite.pitch_deg();
  }
  EXPECT_GT(summer_drift, winter_drift);
}

}  // namespace
}  // namespace gw::hw
