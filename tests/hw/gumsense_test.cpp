#include "hw/gumsense.h"

#include <gtest/gtest.h>

#include "env/environment.h"
#include "power/chargers.h"

namespace gw::hw {
namespace {

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig config;
  power::PowerSystem power{simulation, environment, config};
  Gumsense board{simulation, power, util::Rng{4}};
};

TEST(Gumsense, DailyWakeFiresAtNoon) {
  Fixture f;
  std::vector<sim::SimTime> wakes;
  f.board.set_daily_wake(sim::hours(12), [&] {
    wakes.push_back(f.simulation.now());
    f.board.gumstix().power_off();
  });
  f.simulation.run_until(f.simulation.now() + sim::days(3));  // 3 noons
  ASSERT_EQ(wakes.size(), 3u);
  for (const auto& wake : wakes) {
    // Wake handler runs after boot (25 s) at ~noon; drift is tiny.
    EXPECT_NEAR(sim::time_of_day(wake).to_hours(), 12.0, 0.05);
  }
}

TEST(Gumsense, WakeRearmsDaily) {
  Fixture f;
  int wakes = 0;
  f.board.set_daily_wake(sim::hours(12), [&] {
    ++wakes;
    f.board.gumstix().power_off();
  });
  f.simulation.run_until(f.simulation.now() + sim::days(7));
  EXPECT_EQ(wakes, 7);
  EXPECT_TRUE(f.board.wake_armed());
}

TEST(Gumsense, BrownOutCancelsScheduleUntilRecovery) {
  Fixture f;
  int wakes = 0;
  int cold_boots = 0;
  f.board.set_daily_wake(sim::hours(12), [&] {
    ++wakes;
    f.board.gumstix().power_off();
  });
  f.board.set_cold_boot_handler([&] { ++cold_boots; });

  // Kill the battery at 06:00.
  f.simulation.run_until(f.simulation.now() + sim::hours(6));
  f.power.battery().set_soc(0.0);
  f.power.tick(sim::minutes(1));
  ASSERT_TRUE(f.power.browned_out());

  // Noon passes with no wake; the schedule is gone.
  f.simulation.run_until(f.simulation.now() + sim::days(2));
  EXPECT_EQ(wakes, 0);
  EXPECT_FALSE(f.board.wake_armed());
  EXPECT_FALSE(f.board.msp().wake_schedule().has_value());
  // RTC restarted near the epoch (§IV).
  EXPECT_LT(f.board.msp().rtc_now(), sim::at_midnight(2000, 1, 1));

  // Recharge: cold-boot handler fires.
  f.power.battery().set_soc(0.2);
  f.power.tick(sim::minutes(1));
  EXPECT_EQ(cold_boots, 1);
}

TEST(Gumsense, GumstixPoweredOffDuringBrownOut) {
  Fixture f;
  f.board.gumstix().power_on();
  f.power.battery().set_soc(0.0);
  f.power.tick(sim::minutes(1));
  EXPECT_EQ(f.board.gumstix().state(), Gumstix::State::kOff);
}

TEST(Gumsense, RescheduleReplacesPendingWake) {
  Fixture f;
  int noon_wakes = 0;
  int evening_wakes = 0;
  f.board.set_daily_wake(sim::hours(12), [&] {
    ++noon_wakes;
    f.board.gumstix().power_off();
  });
  f.board.set_daily_wake(sim::hours(18), [&] {
    ++evening_wakes;
    f.board.gumstix().power_off();
  });
  f.simulation.run_until(f.simulation.now() + sim::days(1));
  EXPECT_EQ(noon_wakes, 0);
  EXPECT_EQ(evening_wakes, 1);
}

}  // namespace
}  // namespace gw::hw
