#include "hw/msp430.h"

#include <gtest/gtest.h>

#include "env/environment.h"

namespace gw::hw {
namespace {

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig config;
  power::PowerSystem power{simulation, environment, config};
  Msp430 msp{simulation, power, util::Rng{7}};
};

TEST(Msp430, RtcStartsAtTrueTime) {
  Fixture f;
  EXPECT_EQ(f.msp.rtc_now(), f.simulation.now());
}

TEST(Msp430, RtcDriftStaysWithinPpmBound) {
  Fixture f;
  f.simulation.run_until(f.simulation.now() + sim::days(30));
  // 8 ppm over 30 days = ±20.7 s max.
  EXPECT_LE(std::abs(f.msp.rtc_error_ms()), 21'000);
  EXPECT_NE(f.msp.rtc_error_ms(), 0);  // drift exists
}

TEST(Msp430, SetRtcDisciplinesClock) {
  Fixture f;
  f.simulation.run_until(f.simulation.now() + sim::days(10));
  f.msp.set_rtc(f.simulation.now());
  EXPECT_EQ(f.msp.rtc_error_ms(), 0);
}

TEST(Msp430, SamplesEveryThirtyMinutes) {
  Fixture f;
  f.simulation.run_until(f.simulation.now() + sim::days(1));
  // §III: 48 samples per day.
  EXPECT_EQ(f.msp.pending_samples(), 48u);
  const auto samples = f.msp.drain_samples();
  ASSERT_EQ(samples.size(), 48u);
  for (const auto& sample : samples) {
    EXPECT_GT(sample.voltage.value(), 10.0);
    EXPECT_LT(sample.voltage.value(), 15.0);
  }
  EXPECT_EQ(f.msp.pending_samples(), 0u);
}

TEST(Msp430, RingBufferKeepsNewestWhenNotDrained) {
  Fixture f;
  // Capacity is 96 (two days); after 3 days un-drained only the newest 96
  // survive — bounded RAM, no crash.
  f.simulation.run_until(f.simulation.now() + sim::days(3));
  EXPECT_EQ(f.msp.pending_samples(), 96u);
}

TEST(Msp430, BrownOutResetsRtcToEpochAndClearsState) {
  Fixture f;
  f.msp.set_wake_schedule(sim::hours(12));
  f.simulation.run_until(f.simulation.now() + sim::hours(5));
  ASSERT_GT(f.msp.pending_samples(), 0u);
  f.msp.brown_out();
  EXPECT_EQ(f.msp.rtc_now(), sim::kEpoch);
  EXPECT_EQ(f.msp.pending_samples(), 0u);
  EXPECT_FALSE(f.msp.wake_schedule().has_value());
  EXPECT_EQ(f.msp.brown_out_count(), 1);
  // §IV detection: RTC now reads before the last successful run.
  EXPECT_LT(f.msp.rtc_now(), sim::at_midnight(2009, 9, 22));
}

TEST(Msp430, NextWakeIsAtScheduledTimeOfDay) {
  Fixture f;  // starts at midnight
  f.msp.set_wake_schedule(sim::hours(12));
  const auto wake = f.msp.next_wake();
  ASSERT_TRUE(wake.has_value());
  // Drift over 12h is sub-second; the wake lands at ~noon.
  EXPECT_NEAR((*wake - f.simulation.now()).to_hours(), 12.0, 0.01);
}

TEST(Msp430, NextWakeRollsToTomorrowWhenTimePassed) {
  Fixture f;
  f.simulation.run_until(f.simulation.now() + sim::hours(13));  // past noon
  f.msp.set_wake_schedule(sim::hours(12));
  const auto wake = f.msp.next_wake();
  ASSERT_TRUE(wake.has_value());
  EXPECT_NEAR((*wake - f.simulation.now()).to_hours(), 23.0, 0.01);
}

TEST(Msp430, NoWakeWithoutSchedule) {
  Fixture f;
  EXPECT_FALSE(f.msp.next_wake().has_value());
}

TEST(Msp430, SamplingPausesDuringBrownOut) {
  Fixture f;
  f.power.battery().set_soc(0.0);
  // Force the brown-out edge.
  f.power.tick(sim::minutes(1));
  ASSERT_TRUE(f.power.browned_out());
  f.msp.brown_out();
  f.simulation.run_until(f.simulation.now() + sim::hours(6));
  EXPECT_EQ(f.msp.pending_samples(), 0u);
}

}  // namespace
}  // namespace gw::hw
