#include "hw/radio_modem.h"

#include <gtest/gtest.h>

#include "env/environment.h"

namespace gw::hw {
namespace {

using namespace util::literals;

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig config;
  power::PowerSystem power{simulation, environment, config};
  RadioModem modem{simulation, power, environment.interference()};
};

TEST(RadioModem, TableOneCharacteristics) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.modem.config().rate.value(), 2000.0);
  EXPECT_DOUBLE_EQ(f.modem.config().power.value(), 3.96);
  f.modem.power_on();
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 3.96);
  f.modem.power_off();
  EXPECT_DOUBLE_EQ(f.power.total_load_power().value(), 0.0);
}

TEST(RadioModem, SlowerThanGprsForSamePayload) {
  Fixture f;
  const auto radio_time = f.modem.transfer_time(165_KiB);
  // 5000/2000 rate ratio, similar overheads: radio is >2x slower.
  EXPECT_GT(radio_time.to_seconds(), 2.0 * 270.0);
}

TEST(RadioModem, DropProbabilityFollowsInterferenceModel) {
  Fixture f;
  const auto noon = sim::at_midnight(2009, 9, 22) + sim::hours(12);
  const auto night = sim::at_midnight(2009, 9, 22) + sim::hours(3);
  EXPECT_GT(f.modem.drop_probability_per_minute(noon),
            f.modem.drop_probability_per_minute(night));
}

TEST(RadioModem, LabSiteDropsMoreThanGlacier) {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::EnvironmentConfig lab_config;
  lab_config.radio_site = env::RadioSite::kLab;
  env::Environment lab{lab_config, 1};
  env::Environment glacier{1};
  power::PowerSystem power{simulation, lab, power::PowerSystemConfig{}};
  RadioModem lab_modem{simulation, power, lab.interference()};
  RadioModem glacier_modem{simulation, power, glacier.interference()};
  const auto noon = sim::at_midnight(2009, 9, 22) + sim::hours(12);
  EXPECT_GT(lab_modem.drop_probability_per_minute(noon),
            glacier_modem.drop_probability_per_minute(noon));
}

}  // namespace
}  // namespace gw::hw
