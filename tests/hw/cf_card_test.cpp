#include "hw/cf_card.h"

#include <gtest/gtest.h>

namespace gw::hw {
namespace {

using namespace util::literals;

CompactFlashCard make_card(StorageFormat format = StorageFormat::kPlain,
                           std::uint64_t seed = 1) {
  CfCardConfig config;
  config.format = format;
  return CompactFlashCard{util::Rng{seed}, config};
}

TEST(CfCard, WriteReadRemove) {
  auto card = make_card();
  ASSERT_TRUE(card.write("dgps_001", 165_KiB).ok());
  ASSERT_TRUE(card.exists("dgps_001"));
  const auto read = card.read("dgps_001");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 165_KiB);
  EXPECT_TRUE(card.remove("dgps_001").ok());
  EXPECT_FALSE(card.exists("dgps_001"));
  EXPECT_FALSE(card.remove("dgps_001").ok());
}

TEST(CfCard, CapacityEnforced) {
  CfCardConfig config;
  config.capacity = 300_KiB;
  CompactFlashCard card{util::Rng{1}, config};
  ASSERT_TRUE(card.write("a", 165_KiB).ok());
  EXPECT_FALSE(card.write("b", 165_KiB).ok());
  EXPECT_EQ(card.file_count(), 1u);
}

TEST(CfCard, DoubleBeginWriteRejected) {
  auto card = make_card();
  ASSERT_TRUE(card.begin_write("a", 1_KiB).ok());
  EXPECT_FALSE(card.begin_write("b", 1_KiB).ok());
  ASSERT_TRUE(card.commit_write().ok());
  EXPECT_FALSE(card.commit_write().ok());
}

TEST(CfCard, PlainPowerCutCorruptsInFlightFile) {
  // Use a seed/config where metadata survives to isolate the file effect.
  CfCardConfig config;
  config.metadata_corruption_on_cut = 0.0;
  CompactFlashCard card{util::Rng{1}, config};
  ASSERT_TRUE(card.begin_write("victim", 165_KiB).ok());
  card.power_cut();
  EXPECT_TRUE(card.exists("victim"));        // entry is there...
  EXPECT_FALSE(card.read("victim").ok());    // ...but unreadable
}

TEST(CfCard, PlainPowerCutSometimesKillsMetadata) {
  int metadata_deaths = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    auto card = make_card(StorageFormat::kPlain, seed);
    ASSERT_TRUE(card.begin_write("victim", 1_KiB).ok());
    card.power_cut();
    if (card.metadata_corrupted()) ++metadata_deaths;
  }
  // config default 15% — the rare whole-card corruption of §VII.
  EXPECT_NEAR(metadata_deaths / 200.0, 0.15, 0.07);
}

TEST(CfCard, JournaledPowerCutLosesOnlyInFlight) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    auto card = make_card(StorageFormat::kJournaled, seed);
    ASSERT_TRUE(card.write("committed", 10_KiB).ok());
    ASSERT_TRUE(card.begin_write("in_flight", 10_KiB).ok());
    card.power_cut();
    EXPECT_FALSE(card.metadata_corrupted());
    EXPECT_FALSE(card.exists("in_flight"));
    EXPECT_TRUE(card.read("committed").ok());
  }
}

TEST(CfCard, PowerCutWithNoWriteIsHarmless) {
  auto card = make_card();
  ASSERT_TRUE(card.write("data", 10_KiB).ok());
  card.power_cut();
  EXPECT_TRUE(card.read("data").ok());
  EXPECT_FALSE(card.metadata_corrupted());
}

TEST(CfCard, CorruptedMetadataBlocksEverything) {
  CfCardConfig config;
  config.metadata_corruption_on_cut = 1.0;
  CompactFlashCard card{util::Rng{1}, config};
  ASSERT_TRUE(card.write("data", 10_KiB).ok());
  ASSERT_TRUE(card.begin_write("victim", 1_KiB).ok());
  card.power_cut();
  ASSERT_TRUE(card.metadata_corrupted());
  EXPECT_FALSE(card.read("data").ok());
  EXPECT_FALSE(card.exists("data"));
  EXPECT_TRUE(card.list().empty());
  EXPECT_FALSE(card.write("new", 1_KiB).ok());
}

TEST(CfCard, FsckRecoversMostData) {
  // §VII: "it proved possible to recover the data from the card".
  CfCardConfig config;
  config.metadata_corruption_on_cut = 1.0;
  CompactFlashCard card{util::Rng{42}, config};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(card.write("f" + std::to_string(i), 165_KiB).ok());
  }
  ASSERT_TRUE(card.begin_write("victim", 1_KiB).ok());
  card.power_cut();
  ASSERT_TRUE(card.metadata_corrupted());
  const auto report = card.fsck(/*attempt_recovery=*/true);
  EXPECT_FALSE(card.metadata_corrupted());
  EXPECT_EQ(report.healthy, 20);
  EXPECT_EQ(report.corrupted_files, 1);
  // The 20 committed files are readable again.
  EXPECT_TRUE(card.read("f0").ok());
}

TEST(CfCard, AgeInducesBitrotEventually) {
  CfCardConfig config;
  config.bitrot_per_file_month = 0.05;  // accelerated for the test
  CompactFlashCard card{util::Rng{3}, config};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(card.write("f" + std::to_string(i), 1_KiB).ok());
  }
  card.age(sim::days(365));
  const auto report = card.fsck(/*attempt_recovery=*/false);
  EXPECT_GT(report.corrupted_files, 0);
  EXPECT_LT(report.corrupted_files, 50);
}

TEST(CfCard, ScanWithoutRecoveryCountsLoss) {
  CfCardConfig config;
  config.metadata_corruption_on_cut = 0.0;
  CompactFlashCard card{util::Rng{1}, config};
  ASSERT_TRUE(card.begin_write("victim", 100_KiB).ok());
  card.power_cut();
  auto report = card.fsck(/*attempt_recovery=*/false);
  EXPECT_EQ(report.corrupted_files, 1);
  EXPECT_EQ(report.lost, 100_KiB);
}

}  // namespace
}  // namespace gw::hw
