#include "env/snow.h"

#include <gtest/gtest.h>

namespace gw::env {
namespace {

struct Models {
  TemperatureModel temperature{TemperatureConfig{}, util::Rng{100}};
  SnowModel snow{SnowConfig{}, util::Rng{200}};
};

TEST(Snow, AccumulatesThroughWinter) {
  Models m;
  const double october =
      m.snow.depth(sim::at_midnight(2008, 10, 15), m.temperature).value();
  const double march =
      m.snow.depth(sim::at_midnight(2009, 3, 15), m.temperature).value();
  EXPECT_GT(march, october);
  EXPECT_GT(march, 0.5);
}

TEST(Snow, MeltsBySummer) {
  Models m;
  (void)m.snow.depth(sim::at_midnight(2009, 3, 15), m.temperature);
  const double august =
      m.snow.depth(sim::at_midnight(2009, 8, 15), m.temperature).value();
  EXPECT_LT(august, 0.3);
}

TEST(Snow, DepthNeverNegative) {
  Models m;
  for (int day = 0; day < 730; ++day) {
    const double depth =
        m.snow.depth(sim::at_midnight(2008, 7, 1) + sim::days(day),
                     m.temperature)
            .value();
    EXPECT_GE(depth, 0.0);
  }
}

TEST(Snow, PanelOcclusionBoundedAndMonotoneInDepth) {
  Models m;
  double prev_depth = -1.0;
  for (int day = 0; day < 200; ++day) {
    const auto t = sim::at_midnight(2008, 10, 1) + sim::days(day);
    const double depth = m.snow.depth(t, m.temperature).value();
    const double occlusion = m.snow.panel_occlusion(t, m.temperature);
    EXPECT_GE(occlusion, 0.0);
    EXPECT_LE(occlusion, 1.0);
    if (depth >= 1.2) {
      EXPECT_DOUBLE_EQ(occlusion, 1.0);
    }
    if (prev_depth >= 0.0 && depth > prev_depth) {
      // deeper snow never reduces occlusion within the linear region
      EXPECT_GE(occlusion, std::min(1.0, prev_depth / 1.2) - 1e-12);
    }
    prev_depth = depth;
  }
}

TEST(Snow, TurbineBuriedOnlyUnderDeepSnow) {
  Models m;
  bool ever_buried_in_summer = false;
  for (int day = 0; day < 60; ++day) {
    const auto t = sim::at_midnight(2009, 7, 1) + sim::days(day);
    if (m.snow.turbine_buried(t, m.temperature)) ever_buried_in_summer = true;
  }
  EXPECT_FALSE(ever_buried_in_summer);
}

TEST(Snow, StormsHappenInWinter) {
  Models m;
  int storms = 0;
  for (int day = 0; day < 150; ++day) {
    const auto t = sim::at_midnight(2008, 11, 1) + sim::days(day);
    if (m.snow.storm_today(t, m.temperature)) ++storms;
  }
  EXPECT_GT(storms, 3);  // expectation ≈ 0.12/day over cold days
}

TEST(Snow, Deterministic) {
  Models a;
  Models b;
  for (int day = 0; day < 120; ++day) {
    const auto t = sim::at_midnight(2008, 10, 1) + sim::days(day);
    EXPECT_DOUBLE_EQ(a.snow.depth(t, a.temperature).value(),
                     b.snow.depth(t, b.temperature).value());
  }
}

}  // namespace
}  // namespace gw::env
