#include "env/interference.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace gw::env {
namespace {

TEST(Interference, BusyHoursWorseThanNight) {
  InterferenceModel lab{InterferenceConfig{}, RadioSite::kLab, util::Rng{1}};
  const auto day = sim::at_midnight(2009, 9, 22);
  const double night = lab.dropout_probability(day + sim::hours(3));
  const double noon = lab.dropout_probability(day + sim::hours(12));
  EXPECT_GT(noon, night * 3.0);
}

TEST(Interference, GlacierQuieterThanLab) {
  // §II: the modems looked unreliable in the lab but "more reliable there
  // [on the glacier] than in the lab".
  InterferenceModel lab{InterferenceConfig{}, RadioSite::kLab, util::Rng{1}};
  InterferenceModel glacier{InterferenceConfig{}, RadioSite::kGlacier,
                            util::Rng{1}};
  const auto noon = sim::at_midnight(2009, 9, 22) + sim::hours(12);
  EXPECT_LT(glacier.dropout_probability(noon),
            lab.dropout_probability(noon));
}

TEST(Interference, ProbabilitiesAreValid) {
  InterferenceModel lab{InterferenceConfig{}, RadioSite::kLab, util::Rng{1}};
  for (int hour = 0; hour < 24; ++hour) {
    const double p = lab.dropout_probability(sim::at_midnight(2009, 1, 1) +
                                             sim::hours(hour));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Interference, DropoutDrawsMatchProbabilityRoughly) {
  InterferenceModel lab{InterferenceConfig{}, RadioSite::kLab, util::Rng{7}};
  const auto noon = sim::at_midnight(2009, 9, 22) + sim::hours(12);
  const double p = lab.dropout_probability(noon);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (lab.dropout(noon)) ++hits;
  }
  EXPECT_NEAR(double(hits) / kN, p, 0.01);
}

}  // namespace
}  // namespace gw::env
