#include "env/environment.h"

#include <gtest/gtest.h>

namespace gw::env {
namespace {

TEST(Environment, AllSubsystemsAccessible) {
  Environment environment{42};
  const auto noon = sim::at_midnight(2009, 6, 21) + sim::hours(12);
  EXPECT_GE(environment.solar().irradiance(noon).value(), 0.0);
  EXPECT_GE(environment.wind().speed(noon).value(), 0.0);
  (void)environment.temperature().air(noon);
  (void)environment.snow().depth(noon, environment.temperature());
  (void)environment.melt().water_index(noon, environment.temperature());
  EXPECT_GE(environment.interference().dropout_probability(noon), 0.0);
  EXPECT_GT(environment.gps_sky().visible(noon), 0);
}

TEST(Environment, SameSeedSameWorld) {
  Environment a{7};
  Environment b{7};
  for (int day = 0; day < 60; ++day) {
    const auto t = sim::at_midnight(2009, 3, 1) + sim::days(day) +
                   sim::hours(12);
    EXPECT_DOUBLE_EQ(a.solar().irradiance(t).value(),
                     b.solar().irradiance(t).value());
    EXPECT_DOUBLE_EQ(a.wind().speed(t).value(), b.wind().speed(t).value());
    EXPECT_DOUBLE_EQ(a.temperature().air(t).value(),
                     b.temperature().air(t).value());
    EXPECT_EQ(a.gps_sky().visible(t), b.gps_sky().visible(t));
  }
}

TEST(Environment, DifferentSeedsDifferentWeather) {
  Environment a{7};
  Environment b{8};
  int identical = 0;
  for (int day = 0; day < 30; ++day) {
    const auto t = sim::at_midnight(2009, 6, 1) + sim::days(day) +
                   sim::hours(12);
    if (a.solar().irradiance(t).value() == b.solar().irradiance(t).value()) {
      ++identical;
    }
  }
  EXPECT_LT(identical, 5);
}

TEST(Environment, NamedForksAreStableAndDistinct) {
  Environment environment{11};
  util::Rng a = environment.fork_rng("device-x");
  util::Rng b = environment.fork_rng("device-x");
  util::Rng c = environment.fork_rng("device-y");
  for (int i = 0; i < 20; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    EXPECT_NE(va, c.next_u64());
  }
}

TEST(Environment, ConfigPlumbsThrough) {
  EnvironmentConfig config;
  config.radio_site = RadioSite::kLab;
  config.solar.cloud_stddev = 0.0;
  config.gps_sky.mean_visible = 12.0;
  Environment environment{config, 3};
  EXPECT_EQ(environment.interference().site(), RadioSite::kLab);
  EXPECT_NEAR(environment.gps_sky().config().mean_visible, 12.0, 1e-12);
}

}  // namespace
}  // namespace gw::env
