#include "env/gps_sky.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace gw::env {
namespace {

TEST(GpsSky, VisibleCountsPlausible) {
  GpsSky sky{GpsSkyConfig{}, util::Rng{1}};
  util::Summary counts;
  for (int hour = 0; hour < 24 * 30; ++hour) {
    const auto t = sim::at_midnight(2009, 6, 1) + sim::hours(hour);
    const int n = sky.visible(t);
    EXPECT_GE(n, 0);
    EXPECT_LE(n, 16);
    counts.add(n);
  }
  EXPECT_NEAR(counts.mean(), 9.5, 0.8);
  EXPECT_GT(counts.stddev(), 0.8);  // the geometry actually varies
}

TEST(GpsSky, GeometryRepeatsHalfSiderealDay) {
  GpsSkyConfig config;
  config.jitter = 0.0;               // isolate the deterministic harmonic
  config.secondary_amplitude = 0.0;  // the beat term is incommensurate
  GpsSky sky{config, util::Rng{1}};
  const auto t0 = sim::at_midnight(2009, 6, 1);
  // 11.9661 h period: same count one period later.
  const auto period = sim::hours(11.9661);
  for (int k = 0; k < 8; ++k) {
    const auto t = t0 + sim::hours(k);
    EXPECT_EQ(sky.visible(t), sky.visible(t + period)) << "hour " << k;
  }
}

TEST(GpsSky, FixNeedsEnoughSatellites) {
  GpsSkyConfig config;
  config.mean_visible = 3.0;  // terrible sky
  config.orbital_amplitude = 0.0;
  config.secondary_amplitude = 0.0;
  config.jitter = 0.0;
  GpsSky bad{config, util::Rng{1}};
  EXPECT_FALSE(bad.fix_possible(sim::at_midnight(2009, 6, 1)));

  GpsSky good{GpsSkyConfig{}, util::Rng{1}};
  int possible = 0;
  for (int hour = 0; hour < 240; ++hour) {
    if (good.fix_possible(sim::at_midnight(2009, 6, 1) + sim::hours(hour))) {
      ++possible;
    }
  }
  EXPECT_GT(possible, 230);  // open ice-cap sky: fixes nearly always
}

TEST(GpsSky, MoreSatellitesFasterFix) {
  GpsSkyConfig many_config;
  many_config.mean_visible = 12.0;
  many_config.orbital_amplitude = 0.0;
  many_config.secondary_amplitude = 0.0;
  many_config.jitter = 0.0;
  GpsSky many{many_config, util::Rng{1}};

  GpsSkyConfig few_config = many_config;
  few_config.mean_visible = 5.0;
  GpsSky few{few_config, util::Rng{1}};

  const auto t = sim::at_midnight(2009, 6, 1);
  EXPECT_LT(many.fix_time(t), few.fix_time(t));
}

TEST(GpsSky, FileSizeFactorTracksVisibility) {
  GpsSky sky{GpsSkyConfig{}, util::Rng{1}};
  for (int hour = 0; hour < 100; ++hour) {
    const auto t = sim::at_midnight(2009, 6, 1) + sim::hours(hour);
    const double factor = sky.file_size_factor(t);
    EXPECT_GE(factor, 0.4);
    EXPECT_LE(factor, 1.8);
  }
}

TEST(GpsSky, Deterministic) {
  GpsSky a{GpsSkyConfig{}, util::Rng{9}};
  GpsSky b{GpsSkyConfig{}, util::Rng{9}};
  for (int hour = 0; hour < 100; ++hour) {
    const auto t = sim::at_midnight(2009, 6, 1) + sim::hours(hour);
    EXPECT_EQ(a.visible(t), b.visible(t));
  }
}

}  // namespace
}  // namespace gw::env
