#include "env/solar.h"

#include <gtest/gtest.h>

namespace gw::env {
namespace {

SolarModel make_model() { return SolarModel{SolarConfig{}, util::Rng{1}}; }

TEST(Solar, DarkAtMidnightInSeptember) {
  auto model = make_model();
  const auto midnight = sim::at_midnight(2009, 9, 22);
  EXPECT_DOUBLE_EQ(model.irradiance(midnight).value(), 0.0);
}

TEST(Solar, BrightAtNoonInSeptember) {
  auto model = make_model();
  const auto noon = sim::at_midnight(2009, 9, 22) + sim::hours(12);
  EXPECT_GT(model.irradiance(noon).value(), 50.0);
}

TEST(Solar, NoonIsTheDiurnalMaximum) {
  auto model = make_model();
  const auto day = sim::at_midnight(2009, 6, 21);
  double best = -1.0;
  int best_hour = -1;
  for (int hour = 0; hour < 24; ++hour) {
    const double w = model.irradiance(day + sim::hours(hour)).value();
    if (w > best) {
      best = w;
      best_hour = hour;
    }
  }
  EXPECT_EQ(best_hour, 12);
}

TEST(Solar, PolarNightInDecember) {
  auto model = make_model();
  // At 64.3°N, around the winter solstice the sun barely rises; daylight is
  // ~3-4 h and noon irradiance is tiny compared with June.
  const auto december_noon = sim::at_midnight(2009, 12, 21) + sim::hours(12);
  const auto june_noon = sim::at_midnight(2009, 6, 21) + sim::hours(12);
  auto model2 = make_model();
  const double december = model.irradiance(december_noon).value();
  const double june = model2.irradiance(june_noon).value();
  EXPECT_LT(december, june * 0.12);
}

TEST(Solar, DaylightHoursSeasonality) {
  const auto model = make_model();
  const double june = model.daylight_hours(sim::at_midnight(2009, 6, 21));
  const double december =
      model.daylight_hours(sim::at_midnight(2009, 12, 21));
  const double equinox = model.daylight_hours(sim::at_midnight(2009, 9, 22));
  EXPECT_GT(june, 20.0);
  EXPECT_LT(december, 5.0);
  EXPECT_NEAR(equinox, 12.0, 0.75);
}

TEST(Solar, CloudFactorBoundsIrradiance) {
  // Across many seeds, noon irradiance never exceeds the clear-sky value
  // and is never negative.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    SolarModel model{SolarConfig{}, util::Rng{seed}};
    const auto noon = sim::at_midnight(2009, 6, 21) + sim::hours(12);
    const double w = model.irradiance(noon).value();
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 990.0);
  }
}

TEST(Solar, CloudPersistsWithinADay) {
  auto model = make_model();
  // Two samples in the same day share the cloud draw, so their ratio equals
  // the clear-sky ratio exactly.
  const auto day = sim::at_midnight(2009, 6, 21);
  const double w10 = model.irradiance(day + sim::hours(10)).value();
  const double w14 = model.irradiance(day + sim::hours(14)).value();
  SolarModel clear{SolarConfig{.cloud_stddev = 0.0}, util::Rng{99}};
  const double c10 = clear.irradiance(day + sim::hours(10)).value();
  const double c14 = clear.irradiance(day + sim::hours(14)).value();
  EXPECT_NEAR(w10 / w14, c10 / c14, 1e-9);
}

TEST(Solar, DeterministicPerSeed) {
  SolarModel a{SolarConfig{}, util::Rng{77}};
  SolarModel b{SolarConfig{}, util::Rng{77}};
  for (int day = 0; day < 30; ++day) {
    const auto t = sim::at_midnight(2009, 5, 1) + sim::days(day) + sim::hours(12);
    EXPECT_DOUBLE_EQ(a.irradiance(t).value(), b.irradiance(t).value());
  }
}

}  // namespace
}  // namespace gw::env
