#include "env/melt.h"

#include <gtest/gtest.h>

namespace gw::env {
namespace {

struct Models {
  TemperatureModel temperature{TemperatureConfig{}, util::Rng{100}};
  MeltModel melt{MeltConfig{}, util::Rng{300}};
};

TEST(Melt, WinterIndexNearFloor) {
  Models m;
  const double w =
      m.melt.water_index(sim::at_midnight(2009, 2, 1), m.temperature);
  EXPECT_LT(w, 0.15);
  EXPECT_GE(w, MeltConfig{}.winter_floor);
}

TEST(Melt, SpringOnsetRaisesIndex) {
  Models m;
  const double feb =
      m.melt.water_index(sim::at_midnight(2009, 2, 1), m.temperature);
  const double june =
      m.melt.water_index(sim::at_midnight(2009, 6, 20), m.temperature);
  EXPECT_GT(june, feb + 0.2);
}

TEST(Melt, IndexBounded) {
  Models m;
  for (int day = 0; day < 540; ++day) {
    const double w = m.melt.water_index(
        sim::at_midnight(2009, 1, 1) + sim::days(day), m.temperature);
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(Melt, ConductivityFollowsFig6Shape) {
  // Fig 6: conductivity ~flat (<3 µS) late January through mid-March, then
  // rising to roughly 8–16 µS by late April as melt reaches the bed.
  Models m;
  double winter_sum = 0.0;
  int winter_n = 0;
  for (int day = 0; day < 40; ++day) {
    winter_sum += m.melt
                      .conductivity(sim::at_midnight(2009, 1, 27) +
                                        sim::days(day),
                                    m.temperature, 0.8, 13.0)
                      .value();
    ++winter_n;
  }
  const double spring = m.melt
                            .conductivity(sim::at_midnight(2009, 5, 20),
                                          m.temperature, 0.8, 13.0)
                            .value();
  EXPECT_LT(winter_sum / winter_n, 3.5);
  EXPECT_GT(spring, winter_sum / winter_n + 3.0);
}

TEST(Melt, ConductivityNeverNegative) {
  Models m;
  for (int day = 0; day < 365; ++day) {
    const double c = m.melt
                         .conductivity(sim::at_midnight(2009, 1, 1) +
                                           sim::days(day),
                                       m.temperature, 0.3, 10.0)
                         .value();
    EXPECT_GE(c, 0.0);
  }
}

TEST(Melt, LinkLossSummerVsWinter) {
  // §III/§V: probe radio is better in winter (drier ice). Winter loss ≈2%,
  // summer ≈13% (≈400 of 3000 packets).
  Models m;
  const double winter =
      m.melt.probe_link_loss(sim::at_midnight(2009, 2, 1), m.temperature);
  const double summer =
      m.melt.probe_link_loss(sim::at_midnight(2009, 7, 20), m.temperature);
  EXPECT_LT(winter, 0.05);
  EXPECT_GT(summer, 0.09);
  EXPECT_LE(summer, 0.14);
}

TEST(Melt, LossMonotoneInWaterIndex) {
  // The model is forward-only, so sample chronologically.
  Models m;
  const auto t1 = sim::at_midnight(2009, 3, 1);
  const auto t2 = sim::at_midnight(2009, 7, 1);
  const double w1 = m.melt.water_index(t1, m.temperature);
  const double l1 = m.melt.probe_link_loss(t1, m.temperature);
  const double w2 = m.melt.water_index(t2, m.temperature);
  const double l2 = m.melt.probe_link_loss(t2, m.temperature);
  ASSERT_LT(w1, w2);
  EXPECT_LT(l1, l2);
}

TEST(Melt, MidSummerColdStartInitialisesWet) {
  Models m;
  const double w =
      m.melt.water_index(sim::at_midnight(2009, 7, 15), m.temperature);
  EXPECT_GT(w, 0.4);
}

}  // namespace
}  // namespace gw::env
