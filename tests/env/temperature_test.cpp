#include "env/temperature.h"

#include <gtest/gtest.h>

namespace gw::env {
namespace {

TEST(Temperature, SummerWarmerThanWinter) {
  TemperatureModel model{TemperatureConfig{}, util::Rng{1}};
  double january = 0.0;
  double july = 0.0;
  for (int day = 0; day < 28; ++day) {
    january += model.air(sim::at_midnight(2009, 1, 1) + sim::days(day) +
                         sim::hours(12))
                   .value();
    july += model.air(sim::at_midnight(2009, 7, 1) + sim::days(day) +
                      sim::hours(12))
                .value();
  }
  EXPECT_GT(july / 28, january / 28 + 10.0);
}

TEST(Temperature, WinterBelowFreezing) {
  TemperatureModel model{TemperatureConfig{}, util::Rng{2}};
  double sum = 0.0;
  for (int day = 0; day < 60; ++day) {
    sum += model.air(sim::at_midnight(2009, 1, 1) + sim::days(day) +
                     sim::hours(12))
               .value();
  }
  EXPECT_LT(sum / 60, 0.0);
}

TEST(Temperature, DiurnalAfternoonPeak) {
  TemperatureModel model{TemperatureConfig{.noise_stddev_c = 0.0}, util::Rng{3}};
  const auto day = sim::at_midnight(2009, 7, 10);
  const double afternoon = model.air(day + sim::hours(15)).value();
  const double night = model.air(day + sim::hours(3)).value();
  EXPECT_GT(afternoon, night);
}

TEST(Temperature, EnclosureWarmerThanAir) {
  TemperatureModel model{TemperatureConfig{}, util::Rng{4}};
  const auto t = sim::at_midnight(2009, 1, 15) + sim::hours(12);
  EXPECT_GT(model.enclosure(t).value(), model.air(t).value());
}

TEST(Temperature, Deterministic) {
  TemperatureModel a{TemperatureConfig{}, util::Rng{5}};
  TemperatureModel b{TemperatureConfig{}, util::Rng{5}};
  for (int day = 0; day < 50; ++day) {
    const auto t = sim::at_midnight(2009, 3, 1) + sim::days(day);
    EXPECT_DOUBLE_EQ(a.air(t).value(), b.air(t).value());
  }
}

}  // namespace
}  // namespace gw::env
