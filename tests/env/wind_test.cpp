#include "env/wind.h"

#include <gtest/gtest.h>

namespace gw::env {
namespace {

TEST(Wind, NonNegativeSpeeds) {
  WindModel model{WindConfig{}, util::Rng{3}};
  for (int hour = 0; hour < 24 * 30; ++hour) {
    const auto t = sim::at_midnight(2009, 1, 1) + sim::hours(hour);
    EXPECT_GE(model.speed(t).value(), 0.0);
  }
}

TEST(Wind, DailyMeanPersistsWithinDay) {
  WindModel model{WindConfig{.gust_stddev = 0.0}, util::Rng{3}};
  const auto day = sim::at_midnight(2009, 3, 1);
  const double a = model.speed(day + sim::hours(1)).value();
  const double b = model.speed(day + sim::hours(20)).value();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Wind, WinterIsStormierOnAverage) {
  WindModel model{WindConfig{}, util::Rng{31}};
  double winter = 0.0;
  double summer = 0.0;
  for (int day = 0; day < 120; ++day) {
    winter += model
                  .speed(sim::at_midnight(2008, 11, 15) + sim::days(day) +
                         sim::hours(12))
                  .value();
  }
  for (int day = 0; day < 120; ++day) {
    summer += model
                  .speed(sim::at_midnight(2009, 5, 15) + sim::days(day) +
                         sim::hours(12))
                  .value();
  }
  EXPECT_GT(winter, summer);
}

TEST(Wind, DeterministicPerSeed) {
  WindModel a{WindConfig{}, util::Rng{5}};
  WindModel b{WindConfig{}, util::Rng{5}};
  for (int hour = 0; hour < 100; ++hour) {
    const auto t = sim::at_midnight(2009, 2, 1) + sim::hours(hour);
    EXPECT_DOUBLE_EQ(a.speed(t).value(), b.speed(t).value());
  }
}

TEST(Wind, LongRunMeanReasonable) {
  WindModel model{WindConfig{}, util::Rng{41}};
  double sum = 0.0;
  int n = 0;
  for (int day = 0; day < 365; ++day) {
    sum += model.speed(sim::at_midnight(2009, 1, 1) + sim::days(day) +
                       sim::hours(12))
               .value();
    ++n;
  }
  const double mean = sum / n;
  // Weibull(2, ~6.5) mean ≈ 5.8 m/s; allow generous slack for seasonality.
  EXPECT_GT(mean, 3.5);
  EXPECT_LT(mean, 9.0);
}

}  // namespace
}  // namespace gw::env
