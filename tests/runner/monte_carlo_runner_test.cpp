#include "runner/monte_carlo_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace gw::runner {
namespace {

TEST(MonteCarloRunner, ResultsArriveInTrialOrder) {
  MonteCarloRunner pool{4};
  const auto results =
      pool.run(100, [](std::size_t trial) { return trial * trial; });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t trial = 0; trial < results.size(); ++trial) {
    EXPECT_EQ(results[trial], trial * trial);
  }
}

TEST(MonteCarloRunner, ZeroTrialsReturnsEmpty) {
  MonteCarloRunner pool{2};
  const auto results = pool.run(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(MonteCarloRunner, DefaultThreadCountIsAtLeastOne) {
  MonteCarloRunner pool{0};
  EXPECT_GE(pool.threads(), 1u);
}

TEST(MonteCarloRunner, EveryTrialRunsExactlyOnce) {
  MonteCarloRunner pool{8};
  std::vector<std::atomic<int>> hits(500);
  pool.run(500, [&](std::size_t trial) {
    hits[trial].fetch_add(1, std::memory_order_relaxed);
    return 0;
  });
  for (const auto& count : hits) EXPECT_EQ(count.load(), 1);
}

TEST(MonteCarloRunner, PoolIsReusableAcrossRuns) {
  MonteCarloRunner pool{3};
  long total = 0;
  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto results =
        pool.run(50, [](std::size_t trial) { return long(trial); });
    total += std::accumulate(results.begin(), results.end(), 0L);
  }
  EXPECT_EQ(total, 5 * (49 * 50 / 2));
}

TEST(MonteCarloRunner, MoveOnlyResultsAreSupported) {
  MonteCarloRunner pool{4};
  const auto results = pool.run(
      20, [](std::size_t trial) { return std::make_unique<int>(int(trial)); });
  ASSERT_EQ(results.size(), 20u);
  for (std::size_t trial = 0; trial < results.size(); ++trial) {
    EXPECT_EQ(*results[trial], int(trial));
  }
}

TEST(MonteCarloRunner, LowestThrowingTrialWinsDeterministically) {
  MonteCarloRunner pool{8};
  for (int repeat = 0; repeat < 3; ++repeat) {
    try {
      pool.run(64, [](std::size_t trial) -> int {
        if (trial % 7 == 3) {  // trials 3, 10, 17, ... all throw
          throw std::runtime_error("trial " + std::to_string(trial));
        }
        return 0;
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "trial 3");
    }
  }
}

TEST(MonteCarloRunner, RemainingTrialsStillRunAfterAFailure) {
  MonteCarloRunner pool{4};
  std::atomic<int> ran{0};
  try {
    pool.run(40, [&](std::size_t trial) -> int {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (trial == 0) throw std::runtime_error("boom");
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(ran.load(), 40);
}

TEST(MonteCarloRunner, MoreThreadsThanTrials) {
  MonteCarloRunner pool{16};
  const auto results = pool.run(3, [](std::size_t trial) { return trial; });
  EXPECT_EQ(results, (std::vector<std::size_t>{0, 1, 2}));
}

// Regression: rapid back-to-back jobs smaller than the pool. A worker woken
// late for job N must never claim indices against job N+1's state — doing so
// invoked the new task with out-of-range trial indices (out-of-bounds writes
// into run()'s slots) and overshot the completion count. Shrinking trial
// counts make any stale-bound claim an immediate out-of-range hit.
TEST(MonteCarloRunner, RapidSmallJobsNeverLeakAcrossDispatches) {
  MonteCarloRunner pool{8};
  for (int repeat = 0; repeat < 500; ++repeat) {
    const std::size_t trials = 1 + std::size_t(repeat % 3);
    std::vector<std::atomic<int>> hits(trials);
    const auto results = pool.run(trials, [&](std::size_t trial) {
      EXPECT_LT(trial, trials) << "stale worker claimed past the job bound";
      if (trial >= trials) return trials;  // avoid OOB if the bug regresses
      hits[trial].fetch_add(1, std::memory_order_relaxed);
      return trial;
    });
    ASSERT_EQ(results.size(), trials);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      EXPECT_EQ(results[trial], trial);
      EXPECT_EQ(hits[trial].load(), 1);
    }
  }
}

}  // namespace
}  // namespace gw::runner
