#include "runner/monte_carlo_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace gw::runner {
namespace {

TEST(MonteCarloRunner, ResultsArriveInTrialOrder) {
  MonteCarloRunner pool{4};
  const auto results =
      pool.run(100, [](std::size_t trial) { return trial * trial; });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t trial = 0; trial < results.size(); ++trial) {
    EXPECT_EQ(results[trial], trial * trial);
  }
}

TEST(MonteCarloRunner, ZeroTrialsReturnsEmpty) {
  MonteCarloRunner pool{2};
  const auto results = pool.run(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(MonteCarloRunner, DefaultThreadCountIsAtLeastOne) {
  MonteCarloRunner pool{0};
  EXPECT_GE(pool.threads(), 1u);
}

TEST(MonteCarloRunner, EveryTrialRunsExactlyOnce) {
  MonteCarloRunner pool{8};
  std::vector<std::atomic<int>> hits(500);
  pool.run(500, [&](std::size_t trial) {
    hits[trial].fetch_add(1, std::memory_order_relaxed);
    return 0;
  });
  for (const auto& count : hits) EXPECT_EQ(count.load(), 1);
}

TEST(MonteCarloRunner, PoolIsReusableAcrossRuns) {
  MonteCarloRunner pool{3};
  long total = 0;
  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto results =
        pool.run(50, [](std::size_t trial) { return long(trial); });
    total += std::accumulate(results.begin(), results.end(), 0L);
  }
  EXPECT_EQ(total, 5 * (49 * 50 / 2));
}

TEST(MonteCarloRunner, MoveOnlyResultsAreSupported) {
  MonteCarloRunner pool{4};
  const auto results = pool.run(
      20, [](std::size_t trial) { return std::make_unique<int>(int(trial)); });
  ASSERT_EQ(results.size(), 20u);
  for (std::size_t trial = 0; trial < results.size(); ++trial) {
    EXPECT_EQ(*results[trial], int(trial));
  }
}

TEST(MonteCarloRunner, LowestThrowingTrialWinsDeterministically) {
  MonteCarloRunner pool{8};
  for (int repeat = 0; repeat < 3; ++repeat) {
    try {
      pool.run(64, [](std::size_t trial) -> int {
        if (trial % 7 == 3) {  // trials 3, 10, 17, ... all throw
          throw std::runtime_error("trial " + std::to_string(trial));
        }
        return 0;
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "trial 3");
    }
  }
}

TEST(MonteCarloRunner, RemainingTrialsStillRunAfterAFailure) {
  MonteCarloRunner pool{4};
  std::atomic<int> ran{0};
  try {
    pool.run(40, [&](std::size_t trial) -> int {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (trial == 0) throw std::runtime_error("boom");
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(ran.load(), 40);
}

TEST(MonteCarloRunner, MoreThreadsThanTrials) {
  MonteCarloRunner pool{16};
  const auto results = pool.run(3, [](std::size_t trial) { return trial; });
  EXPECT_EQ(results, (std::vector<std::size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace gw::runner
