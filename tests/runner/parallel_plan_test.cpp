#include "runner/parallel_plan.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace gw::runner {
namespace {

TEST(ParallelPlan, TrialsWinTheMachine) {
  // More trials than cores: every thread goes to the outer layer, shards
  // run serially inside each trial.
  const ParallelPlan plan = plan_nested(8, 16, 4);
  EXPECT_EQ(plan.trial_threads, 8u);
  EXPECT_EQ(plan.shard_workers, 1u);
}

TEST(ParallelPlan, SingleWorldGivesShardsTheMachine) {
  const ParallelPlan plan = plan_nested(8, 1, 4);
  EXPECT_EQ(plan.trial_threads, 1u);
  EXPECT_EQ(plan.shard_workers, 4u);
}

TEST(ParallelPlan, LeftoverCoresGoToShards) {
  // 3 trials on 8 cores: 8/3 = 2 cores left per trial for shard workers.
  const ParallelPlan plan = plan_nested(8, 3, 4);
  EXPECT_EQ(plan.trial_threads, 3u);
  EXPECT_EQ(plan.shard_workers, 2u);
}

TEST(ParallelPlan, ShardWorkersNeverExceedShards) {
  const ParallelPlan plan = plan_nested(16, 1, 2);
  EXPECT_EQ(plan.trial_threads, 1u);
  EXPECT_EQ(plan.shard_workers, 2u);
}

TEST(ParallelPlan, ZeroInputsDegradeToSerial) {
  const ParallelPlan plan = plan_nested(0, 0, 0);
  EXPECT_EQ(plan.trial_threads, 1u);
  EXPECT_EQ(plan.shard_workers, 1u);
}

TEST(ParallelPlan, NeverOversubscribes) {
  for (unsigned hardware = 0; hardware <= 9; ++hardware) {
    for (std::size_t trials = 0; trials <= 5; ++trials) {
      for (std::size_t shards = 0; shards <= 5; ++shards) {
        const ParallelPlan plan = plan_nested(hardware, trials, shards);
        EXPECT_GE(plan.trial_threads, 1u);
        EXPECT_GE(plan.shard_workers, 1u);
        EXPECT_LE(plan.trial_threads * plan.shard_workers,
                  std::max(hardware, 1u))
            << "hardware=" << hardware << " trials=" << trials
            << " shards=" << shards;
      }
    }
  }
}

}  // namespace
}  // namespace gw::runner
