// Pins the runner's headline guarantee: exports are byte-identical at any
// thread count. A miniature Monte Carlo experiment (isolated probe-survival
// worlds, named util::Rng forks per trial) is aggregated in trial order
// into a glacsweb.bench.v1 report, and the rendered JSON must match byte
// for byte across thread counts — parallelism must be invisible in every
// exported byte.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "env/environment.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "runner/monte_carlo_runner.h"
#include "sim/simulation.h"
#include "station/probe_node.h"
#include "util/rng.h"
#include "util/strings.h"

namespace gw::runner {
namespace {

struct TrialResult {
  int alive_at_1y = 0;
  std::uint64_t events = 0;
};

TrialResult survival_trial(std::size_t trial) {
  const sim::SimTime deployed = sim::at_midnight(2008, 9, 1);
  sim::Simulation simulation{deployed};
  env::Environment environment{7};
  const util::Rng trial_rng =
      util::Rng{2008}.fork("determinism-trial-" + std::to_string(trial));
  std::vector<std::unique_ptr<station::ProbeNode>> probes;
  for (int i = 0; i < 3; ++i) {
    station::ProbeNodeConfig config;
    config.probe_id = 20 + i;
    config.sample_interval = sim::days(30);
    probes.push_back(std::make_unique<station::ProbeNode>(
        simulation, environment,
        trial_rng.fork("probe-" + std::to_string(config.probe_id)), config));
  }
  simulation.run_until(deployed + sim::days(365));
  TrialResult result;
  for (const auto& probe : probes) {
    if (probe->alive()) ++result.alive_at_1y;
  }
  result.events = simulation.events_executed();
  return result;
}

std::string export_with_threads(unsigned threads) {
  MonteCarloRunner pool{threads};
  const std::vector<TrialResult> results = pool.run(40, survival_trial);

  obs::MetricsRegistry metrics;
  double alive_sum = 0.0;
  std::uint64_t event_sum = 0;
  for (std::size_t trial = 0; trial < results.size(); ++trial) {
    alive_sum += results[trial].alive_at_1y;
    event_sum += results[trial].events;
    metrics.gauge("trials", "alive_1y_trial_" + std::to_string(trial))
        .set(double(results[trial].alive_at_1y));
  }
  metrics.gauge("summary", "mean_alive_1y").set(alive_sum / 40.0);
  metrics.gauge("summary", "total_events").set(double(event_sum));

  obs::BenchReport report;
  report.bench = "runner_determinism";
  report.meta = {{"trials", "40"}, {"probes", "3"}};
  report.sections = {{"survival", &metrics, nullptr}};
  return obs::to_json(report);
}

TEST(RunnerDeterminism, ExportsAreByteIdenticalAcrossThreadCounts) {
  const std::string serial = export_with_threads(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(export_with_threads(2), serial);
  EXPECT_EQ(export_with_threads(8), serial);
}

TEST(RunnerDeterminism, RepeatRunsAreByteIdentical) {
  EXPECT_EQ(export_with_threads(2), export_with_threads(2));
}

}  // namespace
}  // namespace gw::runner
