// gwlint's own test suite: fixture snippets that must trip each rule,
// suppression-comment handling, config validation (including cycle
// rejection), and deterministic diagnostic ordering. The companion
// `repo_lint` ctest asserts the real tree is clean; these tests assert the
// rules would actually notice if it were not.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace gw::lint {
namespace {

// A miniature of the real layer DAG, enough for the layering fixtures.
constexpr const char* kConfigText = R"(
[layers]
util = []
obs = ["util"]
sim = ["obs"]
station = ["sim"]

[allow.banned-api]
files = ["bench/bench_util.h"]
)";

const Config& test_config() {
  static const Config config = parse_config(kConfigText);
  return config;
}

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(GW_GWLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream stream(path);
  EXPECT_TRUE(stream.good()) << "missing fixture " << path;
  std::stringstream content;
  content << stream.rdbuf();
  return content.str();
}

std::vector<Diagnostic> lint_fixture(const std::string& name,
                                     const std::string& pretend_path) {
  return lint_file(pretend_path, read_fixture(name), test_config());
}

std::vector<std::string> ids(const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::string> out;
  for (const auto& d : diagnostics) out.push_back(d.id);
  return out;
}

// --- GW001: banned APIs ---------------------------------------------------

TEST(GwlintBannedApi, RandomDeviceTrips) {
  const auto diagnostics =
      lint_fixture("banned_random_device.inc", "src/util/bad.h");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].id, "GW001");
  EXPECT_EQ(diagnostics[0].rule, "banned-api");
  EXPECT_EQ(diagnostics[0].line, 7);
}

TEST(GwlintBannedApi, WallClocksTripMemberTimeDoesNot) {
  const auto diagnostics =
      lint_fixture("banned_wall_clock.inc", "src/util/bad.h");
  ASSERT_EQ(diagnostics.size(), 5u);
  const std::vector<int> lines = {diagnostics[0].line, diagnostics[1].line,
                                  diagnostics[2].line, diagnostics[3].line,
                                  diagnostics[4].line};
  EXPECT_EQ(lines, (std::vector<int>{8, 9, 10, 11, 12}));
  for (const auto& d : diagnostics) EXPECT_EQ(d.id, "GW001");
}

TEST(GwlintBannedApi, GetenvAndRandTrip) {
  const auto diagnostics =
      lint_fixture("banned_getenv_rand.inc", "src/util/bad.h");
  ASSERT_EQ(diagnostics.size(), 3u);
  EXPECT_EQ(diagnostics[0].line, 7);  // getenv
  EXPECT_EQ(diagnostics[1].line, 8);  // rand()
  EXPECT_EQ(diagnostics[2].line, 9);  // srand
}

TEST(GwlintBannedApi, ConfigFileAllowlistSilencesWholeFile) {
  const auto diagnostics =
      lint_file("bench/bench_util.h", read_fixture("banned_getenv_rand.inc"),
                test_config());
  EXPECT_TRUE(diagnostics.empty());
}

// --- GW002: unordered iteration -------------------------------------------

TEST(GwlintUnordered, RangeForOverMemberTrips) {
  const auto diagnostics =
      lint_fixture("unordered_range_for.inc", "src/obs/export_helper.h");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].id, "GW002");
  EXPECT_EQ(diagnostics[0].line, 14);
}

TEST(GwlintUnordered, IteratorLoopThroughAliasTrips) {
  const auto diagnostics =
      lint_fixture("unordered_iterator.inc", "src/obs/tags.h");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].id, "GW002");
  EXPECT_EQ(diagnostics[0].line, 12);
}

TEST(GwlintUnordered, RuleOnlyAppliesUnderSrcAndBench) {
  EXPECT_TRUE(
      lint_fixture("unordered_range_for.inc", "tests/obs/helper.h").empty());
  EXPECT_EQ(
      lint_fixture("unordered_range_for.inc", "bench/helper.h").size(), 1u);
}

// --- GW003: layering ------------------------------------------------------

TEST(GwlintLayering, UpwardAndUndeclaredIncludesTrip) {
  const auto diagnostics =
      lint_fixture("layering_upward.inc", "src/util/bad.h");
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].id, "GW003");
  EXPECT_EQ(diagnostics[0].line, 5);  // station/ from util/: upward
  EXPECT_EQ(diagnostics[1].line, 6);  // nonesuch/: undeclared
  EXPECT_NE(diagnostics[0].message.find("upward"), std::string::npos);
  EXPECT_NE(diagnostics[1].message.find("undeclared"), std::string::npos);
}

TEST(GwlintLayering, DownwardIncludeIsFine) {
  const Config& config = test_config();
  const std::string content =
      "#pragma once\n#include \"util/units.h\"\n#include \"obs/metrics.h\"\n";
  EXPECT_TRUE(lint_file("src/sim/fine.h", content, config).empty());
}

TEST(GwlintLayering, TransitiveClosureAllowsSkippingLevels) {
  // station declares only sim as a direct dep; util comes via the closure.
  const std::string content = "#pragma once\n#include \"util/units.h\"\n";
  EXPECT_TRUE(
      lint_file("src/station/fine.h", content, test_config()).empty());
}

TEST(GwlintLayering, UndeclaredSourceLayerTrips) {
  const std::string content = "#pragma once\nint x;\n";
  const auto diagnostics =
      lint_file("src/mystery/thing.h", content, test_config());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].id, "GW003");
}

// --- GW004: pragma once ---------------------------------------------------

TEST(GwlintPragmaOnce, MissingAndMixedGuardsTrip) {
  const auto missing =
      lint_fixture("missing_pragma_once.inc", "src/util/old_guard.h");
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].id, "GW004");
  EXPECT_EQ(missing[0].line, 1);

  const auto mixed = lint_fixture("mixed_guard.inc", "src/util/mixed.h");
  ASSERT_EQ(mixed.size(), 1u);
  EXPECT_EQ(mixed[0].id, "GW004");
  EXPECT_NE(mixed[0].message.find("mixed"), std::string::npos);
}

TEST(GwlintPragmaOnce, OnlyAppliesToHeaders) {
  const std::string content = "int main() { return 0; }\n";
  EXPECT_TRUE(lint_file("src/util/tool.cpp", content, test_config()).empty());
}

// --- GW005 + suppressions -------------------------------------------------

TEST(GwlintAllows, JustifiedSuppressionsInEveryPositionLintClean) {
  const auto diagnostics =
      lint_fixture("clean_suppressed.inc", "src/obs/suppressed.h");
  EXPECT_TRUE(diagnostics.empty())
      << format_diagnostic(diagnostics.empty() ? Diagnostic{} : diagnostics[0]);
}

TEST(GwlintAllows, BadAllowsTripAndDoNotSuppress) {
  const auto diagnostics = lint_fixture("bad_allow.inc", "src/util/bad.h");
  // Reasonless allow (GW005) + the getenv it failed to cover (GW001),
  // unknown rule name (GW005), malformed marker (GW005).
  const auto got = ids(diagnostics);
  EXPECT_EQ(got, (std::vector<std::string>{"GW005", "GW001", "GW005",
                                           "GW005"}));
}

TEST(GwlintAllows, QuotedAllowSyntaxIsNotASuppression) {
  // The allow marker inside a string literal must not suppress anything —
  // and the unjustified text in it must not trip GW005 either.
  const std::string content =
      "#pragma once\n"
      "inline const char* kDoc =\n"
      "    \"write gwlint: allow(banned-api) with a reason\";\n"
      "#include <cstdlib>\n"
      "inline const char* v() { return std::getenv(\"X\"); }\n";
  const auto diagnostics =
      lint_file("src/util/doc.h", content, test_config());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].id, "GW001");
}

// --- clean fixture + determinism ------------------------------------------

TEST(GwlintClean, IdiomaticCodeLintsClean) {
  const auto diagnostics =
      lint_fixture("clean_ok.inc", "src/util/clean_ok.h");
  EXPECT_TRUE(diagnostics.empty())
      << format_diagnostic(diagnostics.empty() ? Diagnostic{} : diagnostics[0]);
}

TEST(GwlintDeterminism, DiagnosticsAreSortedAndStableAcrossRuns) {
  // One file that trips several rules at interleaved lines.
  const std::string content = read_fixture("banned_wall_clock.inc") +
                              read_fixture("banned_getenv_rand.inc");
  const auto first = lint_file("src/util/multi.h", content, test_config());
  const auto second = lint_file("src/util/multi.h", content, test_config());
  EXPECT_EQ(first, second);
  ASSERT_GT(first.size(), 2u);
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].line, first[i].line);
  }
}

TEST(GwlintDeterminism, SortIsTotalOrderIndependentOfInputOrder) {
  std::vector<Diagnostic> diagnostics = {
      {"b.h", 3, "GW001", "banned-api", "x"},
      {"a.h", 9, "GW004", "pragma-once", "y"},
      {"a.h", 9, "GW001", "banned-api", "z"},
      {"a.h", 2, "GW003", "layering", "w"},
  };
  std::mt19937 gen{1234};  // test-only shuffle; gwlint itself bans this
  for (int round = 0; round < 8; ++round) {
    std::shuffle(diagnostics.begin(), diagnostics.end(), gen);
    auto sorted = diagnostics;
    sort_diagnostics(sorted);
    EXPECT_EQ(sorted[0].file, "a.h");
    EXPECT_EQ(sorted[0].line, 2);
    EXPECT_EQ(sorted[1].line, 9);
    EXPECT_EQ(sorted[1].id, "GW001");
    EXPECT_EQ(sorted[2].id, "GW004");
    EXPECT_EQ(sorted[3].file, "b.h");
  }
}

TEST(GwlintFormat, DiagnosticRendersFileLineRule) {
  const Diagnostic d{"src/obs/export.cpp", 42, "GW002",
                     "unordered-iteration", "loop over unordered map"};
  EXPECT_EQ(format_diagnostic(d),
            "src/obs/export.cpp:42: [GW002/unordered-iteration] loop over "
            "unordered map");
}

// --- config parsing -------------------------------------------------------

TEST(GwlintConfig, ParsesLayersAndAllowlists) {
  const Config& config = test_config();
  ASSERT_TRUE(config.error.empty()) << config.error;
  EXPECT_EQ(config.layer_deps.size(), 4u);
  EXPECT_TRUE(config.layer_closure.at("station").count("util") == 1);
  EXPECT_TRUE(config.allow_files.at("banned-api").count("bench/bench_util.h")
              == 1);
}

TEST(GwlintConfig, RejectsCycles) {
  const Config config = parse_config(
      "[layers]\na = [\"b\"]\nb = [\"c\"]\nc = [\"a\"]\n");
  EXPECT_NE(config.error.find("cycle"), std::string::npos) << config.error;
}

TEST(GwlintConfig, RejectsUndeclaredDependency) {
  const Config config = parse_config("[layers]\na = [\"ghost\"]\n");
  EXPECT_NE(config.error.find("undeclared"), std::string::npos);
}

TEST(GwlintConfig, RejectsUnknownRuleInAllowSection) {
  const Config config =
      parse_config("[allow.no-such-rule]\nfiles = [\"x.h\"]\n");
  EXPECT_FALSE(config.error.empty());
}

TEST(GwlintConfig, RejectsDuplicateLayer) {
  const Config config = parse_config("[layers]\na = []\na = []\n");
  EXPECT_NE(config.error.find("twice"), std::string::npos);
}

// --- the real config ------------------------------------------------------

TEST(GwlintRealConfig, RepoLayersTomlParsesAndMatchesArchitecture) {
  std::ifstream stream(std::string(GW_GWLINT_REPO_ROOT) +
                       "/tools/gwlint/layers.toml");
  ASSERT_TRUE(stream.good());
  std::stringstream text;
  text << stream.rdbuf();
  const Config config = parse_config(text.str());
  ASSERT_TRUE(config.error.empty()) << config.error;
  // The documented chain: util at the bottom, baseline at the top,
  // runner dependency-free.
  EXPECT_TRUE(config.layer_closure.at("baseline").count("util") == 1);
  EXPECT_TRUE(config.layer_closure.at("core").count("proto") == 1);
  EXPECT_TRUE(config.layer_closure.at("runner").empty());
  EXPECT_TRUE(config.layer_closure.at("util").empty());
}

// --- GW006: persist coverage (semantic pass) ------------------------------

std::vector<SourceFile> fixture_files(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<SourceFile> files;
  for (const auto& [fixture, path] : pairs) {
    files.push_back({path, read_fixture(fixture)});
  }
  return files;
}

TEST(GwlintPersist, MissingMemberTripsAllowedTransientDoesNot) {
  const auto diagnostics = lint_repo(
      fixture_files({{"persist_missing.inc", "src/obs/persist_missing.h"}}),
      "docs/OBSERVABILITY.md", "", test_config());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].id, "GW006");
  EXPECT_EQ(diagnostics[0].rule, "persist-coverage");
  EXPECT_EQ(diagnostics[0].line, 18);
  EXPECT_NE(diagnostics[0].message.find("TelemetryBank::high_water_"),
            std::string::npos);
}

TEST(GwlintPersist, OutOfLineBodyInAnotherFileIsFound) {
  const auto diagnostics = lint_repo(
      fixture_files(
          {{"persist_split_decl.inc", "src/station/persist_split.h"},
           {"persist_split_def.inc", "src/station/persist_split.cpp"}}),
      "docs/OBSERVABILITY.md", "", test_config());
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].id, "GW006");
  EXPECT_EQ(diagnostics[0].file, "src/station/persist_split.h");
  EXPECT_EQ(diagnostics[0].line, 14);
  EXPECT_NE(diagnostics[0].message.find("SplitPersist::forgotten_"),
            std::string::npos);
}

// --- GW007: observability registry ----------------------------------------

TEST(GwlintObsRegistry, CodeAndDocDriftBothDirections) {
  const auto diagnostics = lint_repo(
      fixture_files({{"obsreg_code.inc", "src/obs/obsreg_code.h"}}),
      "docs/obsreg_doc.md", read_fixture("obsreg_doc.md"), test_config());
  ASSERT_EQ(diagnostics.size(), 5u);
  for (const auto& d : diagnostics) EXPECT_EQ(d.id, "GW007");
  // Sorted order puts the stale doc row first (docs/ < src/).
  EXPECT_EQ(diagnostics[0].file, "docs/obsreg_doc.md");
  EXPECT_EQ(diagnostics[0].line, 7);
  EXPECT_NE(diagnostics[0].message.find("uplink.ghost_metric"),
            std::string::npos);
  EXPECT_EQ(diagnostics[1].line, 12);  // queue_depth undocumented
  EXPECT_NE(diagnostics[1].message.find("has no row"), std::string::npos);
  EXPECT_EQ(diagnostics[2].line, 13);  // BadFrames case
  EXPECT_NE(diagnostics[2].message.find("snake.case.dotted"),
            std::string::npos);
  // Line 14 carries both the doc-kind and the code-kind clash.
  EXPECT_EQ(diagnostics[3].line, 14);
  EXPECT_NE(diagnostics[3].message.find("documents it as a counter"),
            std::string::npos);
  EXPECT_EQ(diagnostics[4].line, 14);
  EXPECT_NE(diagnostics[4].message.find("one name, one instrument"),
            std::string::npos);
}

TEST(GwlintObsRegistry, EmptyDocSkipsTheRule) {
  const auto diagnostics = lint_repo(
      fixture_files({{"obsreg_code.inc", "src/obs/obsreg_code.h"}}),
      "docs/OBSERVABILITY.md", "", test_config());
  EXPECT_TRUE(diagnostics.empty());
}

// --- GW008: thread context ------------------------------------------------

TEST(GwlintThreadContext, WorkerReachesCoordinatorThroughHelper) {
  const auto diagnostics = lint_repo(
      fixture_files(
          {{"context_worker_escape.inc", "src/sim/context_worker_escape.h"}}),
      "docs/OBSERVABILITY.md", "", test_config());
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].id, "GW008");
  EXPECT_EQ(diagnostics[0].line, 19);
  EXPECT_NE(diagnostics[0].message.find(
                "'MiniKernel::helper' runs in worker context but calls "
                "coordinator-only 'apply_state()'"),
            std::string::npos);
  EXPECT_EQ(diagnostics[1].line, 20);
  EXPECT_NE(diagnostics[1].message.find("'post_apply()'"),
            std::string::npos);
}

TEST(GwlintThreadContext, AnnotationHygiene) {
  const auto diagnostics = lint_repo(
      fixture_files({{"context_hygiene.inc", "src/sim/context_hygiene.h"}}),
      "docs/OBSERVABILITY.md", "", test_config());
  ASSERT_EQ(diagnostics.size(), 3u);
  for (const auto& d : diagnostics) EXPECT_EQ(d.id, "GW008");
  EXPECT_EQ(diagnostics[0].line, 7);
  EXPECT_NE(diagnostics[0].message.find("unknown gw::context value"),
            std::string::npos);
  EXPECT_EQ(diagnostics[1].line, 10);
  EXPECT_NE(diagnostics[1].message.find("not attached"), std::string::npos);
  EXPECT_EQ(diagnostics[2].line, 17);
  EXPECT_NE(diagnostics[2].message.find("conflicting"), std::string::npos);
}

// --- per-rule config allowlists across rule families ----------------------

TEST(GwlintAllowScope, BannedApiAllowlistDoesNotSilenceSemanticRules) {
  const Config config = parse_config(
      "[layers]\nutil = []\n\n"
      "[allow.banned-api]\nfiles = [\"src/util/allow_scope_mix.h\"]\n");
  ASSERT_TRUE(config.error.empty()) << config.error;
  const auto files =
      fixture_files({{"allow_scope_mix.inc", "src/util/allow_scope_mix.h"}});
  const auto diagnostics = lint_repo(files, "docs/OBSERVABILITY.md",
                                     "prose-only contract, no tables\n",
                                     config);
  // getenv (GW001) is allowlisted away; the semantic rules still fire.
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].id, "GW007");
  EXPECT_EQ(diagnostics[0].line, 13);
  EXPECT_EQ(diagnostics[1].id, "GW006");
  EXPECT_EQ(diagnostics[1].line, 23);

  // Without the allowlist the same file also trips GW001.
  const Config plain = parse_config("[layers]\nutil = []\n");
  const auto all = lint_repo(files, "docs/OBSERVABILITY.md",
                             "prose-only contract, no tables\n", plain);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].id, "GW001");
  EXPECT_EQ(all[0].line, 9);
}

TEST(GwlintAllowScope, SemanticRuleAllowlistIsPerRuleToo) {
  const Config config = parse_config(
      "[layers]\nutil = []\n\n"
      "[allow.persist-coverage]\nfiles = [\"src/util/allow_scope_mix.h\"]\n");
  ASSERT_TRUE(config.error.empty()) << config.error;
  const auto diagnostics = lint_repo(
      fixture_files({{"allow_scope_mix.inc", "src/util/allow_scope_mix.h"}}),
      "docs/OBSERVABILITY.md", "prose-only contract, no tables\n", config);
  // GW006 allowlisted away; GW001 and GW007 remain.
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].id, "GW001");
  EXPECT_EQ(diagnostics[1].id, "GW007");
}

// --- baseline -------------------------------------------------------------

TEST(GwlintBaseline, ParsesEntriesSkipsCommentsAndBlanks) {
  const auto entries =
      parse_baseline("# pinned findings\n\nfoo:1: [GW001/x] a\nbar \r\n");
  EXPECT_EQ(entries,
            (std::vector<std::string>{"foo:1: [GW001/x] a", "bar"}));
}

TEST(GwlintBaseline, SuppressesExactMatchesAndReportsStaleEntries) {
  auto diagnostics = lint_repo(
      fixture_files({{"persist_missing.inc", "src/obs/persist_missing.h"}}),
      "docs/OBSERVABILITY.md", "", test_config());
  ASSERT_EQ(diagnostics.size(), 1u);
  const std::string pinned = format_diagnostic(diagnostics[0]);
  const std::string ghost =
      "src/ghost.h:1: [GW006/persist-coverage] no longer fires";
  const auto result = apply_baseline(std::move(diagnostics),
                                     {pinned, ghost});
  EXPECT_TRUE(result.fresh.empty());
  EXPECT_EQ(result.suppressed, 1u);
  EXPECT_EQ(result.stale, (std::vector<std::string>{ghost}));
}

// --- JSON output ----------------------------------------------------------

TEST(GwlintJson, RendersExactBytes) {
  BaselineResult result;
  result.fresh = {{"a.h", 3, "GW001", "banned-api", "uses \"getenv\""}};
  result.suppressed = 2;
  result.stale = {"gone"};
  EXPECT_EQ(format_json(result),
            "{\n"
            "  \"schema\": \"gwlint.v1\",\n"
            "  \"diagnostics\": [\n"
            "    {\"file\": \"a.h\", \"line\": 3, \"id\": \"GW001\", "
            "\"rule\": \"banned-api\", \"message\": \"uses \\\"getenv\\\"\"}\n"
            "  ],\n"
            "  \"baseline_suppressed\": 2,\n"
            "  \"stale_baseline\": [\n"
            "    \"gone\"\n"
            "  ]\n"
            "}\n");

  BaselineResult empty;
  EXPECT_EQ(format_json(empty),
            "{\n"
            "  \"schema\": \"gwlint.v1\",\n"
            "  \"diagnostics\": [],\n"
            "  \"baseline_suppressed\": 0,\n"
            "  \"stale_baseline\": []\n"
            "}\n");
}

TEST(GwlintJson, ByteIdenticalAcrossRunsAndInputOrder) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"persist_missing.inc", "src/obs/persist_missing.h"},
      {"persist_split_decl.inc", "src/station/persist_split.h"},
      {"persist_split_def.inc", "src/station/persist_split.cpp"},
      {"obsreg_code.inc", "src/obs/obsreg_code.h"},
      {"context_worker_escape.inc", "src/sim/context_worker_escape.h"},
      {"context_hygiene.inc", "src/sim/context_hygiene.h"},
  };
  auto files = fixture_files(pairs);
  const std::string doc = read_fixture("obsreg_doc.md");

  BaselineResult first;
  first.fresh = lint_repo(files, "docs/obsreg_doc.md", doc, test_config());
  const std::string rendered = format_json(first);
  EXPECT_GT(first.fresh.size(), 5u);

  std::mt19937 gen{99};  // test-only shuffle; gwlint itself bans this
  for (int round = 0; round < 4; ++round) {
    std::shuffle(files.begin(), files.end(), gen);
    BaselineResult again;
    again.fresh = lint_repo(files, "docs/obsreg_doc.md", doc, test_config());
    EXPECT_EQ(format_json(again), rendered);
  }
}

TEST(GwlintStrip, StripperHandlesRawStringsAndEscapes) {
  const std::string content =
      "auto s = R\"(getenv inside raw)\";\n"
      "auto t = \"time(NULL) \\\" quoted\";\n"
      "char c = '\\'';\n"
      "int live_code = 1;  // getenv in comment\n";
  const std::string stripped = strip_comments_and_strings(content);
  EXPECT_EQ(stripped.find("getenv"), std::string::npos);
  EXPECT_EQ(stripped.find("time("), std::string::npos);
  EXPECT_NE(stripped.find("live_code"), std::string::npos);
  // Line structure is preserved exactly.
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(content.begin(), content.end(), '\n'));
}

}  // namespace
}  // namespace gw::lint
