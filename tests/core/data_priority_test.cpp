#include "core/data_priority.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gw::core {
namespace {

std::vector<proto::ProbeReading> baseline_batch(util::Rng& rng, int n,
                                                double mean_us = 1.0,
                                                double sigma_us = 0.25) {
  std::vector<proto::ProbeReading> batch;
  for (int i = 0; i < n; ++i) {
    proto::ProbeReading reading;
    reading.probe_id = 21;
    reading.conductivity_us = mean_us + sigma_us * rng.normal();
    reading.pressure_kpa = 600.0 + 8.0 * rng.normal();
    batch.push_back(reading);
  }
  return batch;
}

TEST(DataPriority, BaselineIsRoutine) {
  DataPriorityAnalyzer analyzer;
  util::Rng rng{1};
  const auto batch = baseline_batch(rng, 500);
  EXPECT_EQ(analyzer.analyze(batch), DataPriority::kRoutine);
  EXPECT_EQ(analyzer.urgent_batches(), 0);
}

TEST(DataPriority, SustainedLargeStepEscalatesToUrgent) {
  DataPriorityAnalyzer analyzer;
  util::Rng rng{2};
  (void)analyzer.analyze(baseline_batch(rng, 300));
  // Melt onset: conductivity jumps from ~1 to ~8 uS and stays there.
  const auto onset = baseline_batch(rng, 50, 8.0, 0.5);
  EXPECT_EQ(analyzer.analyze(onset), DataPriority::kUrgent);
  EXPECT_GE(analyzer.urgent_batches(), 1);
}

TEST(DataPriority, SingleOutlierIsNotUrgent) {
  DataPriorityAnalyzer analyzer;
  util::Rng rng{3};
  (void)analyzer.analyze(baseline_batch(rng, 300));
  // One corrupted-looking spike must not force a session (the sustain
  // requirement): it rates at most kInteresting.
  proto::ProbeReading spike;
  spike.probe_id = 21;
  spike.conductivity_us = 40.0;
  spike.pressure_kpa = 600.0;
  const auto priority = analyzer.analyze(
      std::span<const proto::ProbeReading>{&spike, 1});
  EXPECT_NE(priority, DataPriority::kUrgent);
}

TEST(DataPriority, ModerateExcursionIsInteresting) {
  DataPriorityConfig config;
  config.interesting_sigma = 3.0;
  config.urgent_sigma = 50.0;  // unreachable: isolate the middle band
  DataPriorityAnalyzer analyzer{config};
  util::Rng rng{4};
  (void)analyzer.analyze(baseline_batch(rng, 300));
  // ~5-sigma sustained bump; long enough for the fast tracker to settle on
  // the new level.
  const auto bump = baseline_batch(rng, 80, 2.2, 0.1);
  EXPECT_EQ(analyzer.analyze(bump), DataPriority::kInteresting);
}

TEST(DataPriority, SlowDriftIsAbsorbed) {
  DataPriorityAnalyzer analyzer;
  util::Rng rng{5};
  (void)analyzer.analyze(baseline_batch(rng, 300));
  // Seasonal drift: +0.005 uS per 4-reading batch — an order of magnitude
  // slower than the Fig 6 onset ramp.
  DataPriority worst = DataPriority::kRoutine;
  for (int i = 0; i < 300; ++i) {
    const auto batch = baseline_batch(rng, 4, 1.0 + 0.005 * i, 0.25);
    worst = std::max(worst, analyzer.analyze(batch));
  }
  EXPECT_NE(worst, DataPriority::kUrgent);
}

TEST(DataPriority, PressureSpikeAlsoEscalates) {
  // §I: stick-slip studies track basal water-pressure changes.
  DataPriorityAnalyzer analyzer;
  util::Rng rng{6};
  (void)analyzer.analyze(baseline_batch(rng, 300));
  std::vector<proto::ProbeReading> surge;
  for (int i = 0; i < 30; ++i) {
    proto::ProbeReading reading;
    reading.probe_id = 21;
    reading.conductivity_us = 1.0;
    reading.pressure_kpa = 900.0;  // step far beyond the 8 kPa noise
    surge.push_back(reading);
  }
  EXPECT_EQ(analyzer.analyze(surge), DataPriority::kUrgent);
}

TEST(DataPriority, ProbesTrackedIndependently) {
  DataPriorityAnalyzer analyzer;
  util::Rng rng{7};
  // Probe 21 baseline low, probe 24 baseline high — neither is an anomaly
  // for the other.
  std::vector<proto::ProbeReading> mixed;
  for (int i = 0; i < 400; ++i) {
    proto::ProbeReading a;
    a.probe_id = 21;
    a.conductivity_us = 0.5 + 0.1 * rng.normal();
    a.pressure_kpa = 600.0;
    mixed.push_back(a);
    proto::ProbeReading b;
    b.probe_id = 24;
    b.conductivity_us = 6.0 + 0.1 * rng.normal();
    b.pressure_kpa = 600.0;
    mixed.push_back(b);
  }
  EXPECT_EQ(analyzer.analyze(mixed), DataPriority::kRoutine);
}

TEST(DataPriority, EmptyBatchIsRoutine) {
  DataPriorityAnalyzer analyzer;
  EXPECT_EQ(analyzer.analyze({}), DataPriority::kRoutine);
}

}  // namespace
}  // namespace gw::core
