#include "core/update_manager.h"

#include <gtest/gtest.h>

namespace gw::core {
namespace {

UpdatePackage make_package(const std::string& payload) {
  UpdatePackage package;
  package.name = "basestation.py";
  package.payload = payload;
  package.expected_md5 = util::Md5::hex_digest(payload);
  return package;
}

TEST(UpdateManager, CleanDownloadInstalls) {
  UpdateManagerConfig config;
  config.transfer_corruption = 0.0;
  UpdateManager manager{util::Rng{1}, config};
  const auto beacon = manager.apply(make_package("print('hello glacier')"));
  EXPECT_TRUE(beacon.verified);
  EXPECT_TRUE(manager.has("basestation.py"));
  EXPECT_EQ(manager.installed("basestation.py"), "print('hello glacier')");
  EXPECT_EQ(manager.installs(), 1);
  EXPECT_EQ(manager.rejections(), 0);
}

TEST(UpdateManager, CorruptedDownloadRejectedOldFileKept) {
  UpdateManagerConfig config;
  config.transfer_corruption = 0.0;
  UpdateManager manager{util::Rng{1}, config};
  (void)manager.apply(make_package("version-1"));

  UpdateManagerConfig always_corrupt;
  always_corrupt.transfer_corruption = 1.0;
  UpdateManager corrupting{util::Rng{2}, always_corrupt};
  (void)corrupting.apply(make_package("version-1"));
  const auto beacon = corrupting.apply(make_package("version-2"));
  EXPECT_FALSE(beacon.verified);
  EXPECT_NE(beacon.md5, util::Md5::hex_digest("version-2"));
  EXPECT_FALSE(corrupting.has("version-2"));
  EXPECT_EQ(corrupting.rejections(), 2);
}

TEST(UpdateManager, BeaconRendersAsHttpGet) {
  // §VI: "the script ... uploads the MD5sum that it has calculated using a
  // HTTP GET (the version of wget in use does not support POST)."
  UpdateManagerConfig config;
  config.transfer_corruption = 0.0;
  UpdateManager manager{util::Rng{1}, config};
  const auto beacon = manager.apply(make_package("x = 1"));
  const std::string get = beacon.http_get();
  EXPECT_NE(get.find("GET /update_result?file=basestation.py&md5="),
            std::string::npos);
  EXPECT_NE(get.find("&ok=1"), std::string::npos);
}

TEST(UpdateManager, CorruptionRateMatchesConfig) {
  UpdateManagerConfig config;
  config.transfer_corruption = 0.3;
  UpdateManager manager{util::Rng{5}, config};
  int rejected = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto beacon = manager.apply(make_package("payload-" +
                                                   std::to_string(i)));
    if (!beacon.verified) ++rejected;
  }
  EXPECT_NEAR(rejected / 1000.0, 0.3, 0.05);
  EXPECT_EQ(manager.downloads(), 1000);
  EXPECT_EQ(manager.installs() + manager.rejections(), 1000);
}

TEST(UpdateManager, RetryAfterCorruptionSucceeds) {
  // The deployed workflow: Southampton sees ok=0 in the beacon and resends
  // the next day.
  UpdateManagerConfig config;
  config.transfer_corruption = 0.5;
  UpdateManager manager{util::Rng{7}, config};
  const auto package = make_package("important fix");
  int attempts = 0;
  while (!manager.has("basestation.py") && attempts < 20) {
    (void)manager.apply(package);
    ++attempts;
  }
  EXPECT_TRUE(manager.has("basestation.py"));
}

TEST(UpdateManager, EmptyPayloadNeverCorrupts) {
  UpdateManagerConfig config;
  config.transfer_corruption = 1.0;
  UpdateManager manager{util::Rng{9}, config};
  const auto beacon = manager.apply(make_package(""));
  EXPECT_TRUE(beacon.verified);
}

}  // namespace
}  // namespace gw::core
