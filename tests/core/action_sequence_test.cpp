#include "core/action_sequence.h"

#include <gtest/gtest.h>

#include "core/watchdog.h"

namespace gw::core {
namespace {

TEST(ActionSequence, RunsStepsInOrder) {
  sim::Simulation simulation;
  ActionSequence sequence{simulation};
  std::vector<std::string> order;
  sequence.add_fixed("a", sim::seconds(10), [&] { order.push_back("a"); });
  sequence.add_fixed("b", sim::seconds(20), [&] { order.push_back("b"); });
  sequence.add_fixed("c", sim::seconds(5), [&] { order.push_back("c"); });
  bool done = false;
  bool was_aborted = true;
  sequence.run([&](bool aborted) {
    done = true;
    was_aborted = aborted;
  });
  simulation.run_all();
  EXPECT_TRUE(done);
  EXPECT_FALSE(was_aborted);
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(sequence.completed_steps().size(), 3u);
}

TEST(ActionSequence, TimeAdvancesByStepDurations) {
  sim::Simulation simulation;
  ActionSequence sequence{simulation};
  sequence.add_fixed("a", sim::seconds(10));
  sequence.add_fixed("b", sim::seconds(20));
  sim::SimTime finished{};
  sequence.run([&](bool) { finished = simulation.now(); });
  simulation.run_all();
  EXPECT_EQ(finished, sim::kEpoch + sim::seconds(30));
}

TEST(ActionSequence, ChunkedStepRunsUntilExhausted) {
  sim::Simulation simulation;
  ActionSequence sequence{simulation};
  int files = 5;
  int fetched = 0;
  sequence.add_step("fetch_gps_files",
                    [&]() -> std::optional<sim::Duration> {
                      if (files == 0) return std::nullopt;
                      --files;
                      ++fetched;
                      return sim::seconds(28);
                    });
  sequence.run([](bool) {});
  simulation.run_all();
  EXPECT_EQ(fetched, 5);
  EXPECT_EQ(simulation.now(), sim::kEpoch + sim::seconds(5 * 28));
}

TEST(ActionSequence, AbortStopsMidSequence) {
  sim::Simulation simulation;
  ActionSequence sequence{simulation};
  int chunks = 0;
  sequence.add_step("endless", [&]() -> std::optional<sim::Duration> {
    ++chunks;
    return sim::minutes(1);
  });
  bool done = false;
  bool was_aborted = false;
  sequence.run([&](bool aborted) {
    done = true;
    was_aborted = aborted;
  });
  simulation.schedule_in(sim::minutes(10) + sim::seconds(1),
                         [&] { sequence.abort(); });
  simulation.run_until(simulation.now() + sim::hours(1));
  EXPECT_TRUE(done);
  EXPECT_TRUE(was_aborted);
  EXPECT_EQ(chunks, 11);  // 10 completed minutes + the in-flight chunk
  EXPECT_FALSE(sequence.running());
}

TEST(ActionSequence, WatchdogAbortIntegration) {
  // The deployed pattern: MSP arms a 2 h watchdog; expiry aborts the run.
  sim::Simulation simulation;
  Watchdog watchdog{simulation};
  ActionSequence sequence{simulation};
  int uploads = 0;
  sequence.add_step("upload_backlog", [&]() -> std::optional<sim::Duration> {
    ++uploads;
    return sim::minutes(5);  // one file per chunk, endless backlog
  });
  bool aborted = false;
  watchdog.arm([&] { sequence.abort(); });
  sequence.run([&](bool a) { aborted = a; });
  simulation.run_until(simulation.now() + sim::hours(3));
  EXPECT_TRUE(aborted);
  // 2 h / 5 min = 24 chunks (+1 in flight when the axe fell).
  EXPECT_NEAR(uploads, 24, 1);
}

TEST(ActionSequence, EmptySequenceCompletesImmediately) {
  sim::Simulation simulation;
  ActionSequence sequence{simulation};
  bool done = false;
  sequence.run([&](bool aborted) {
    done = true;
    EXPECT_FALSE(aborted);
  });
  EXPECT_TRUE(done);  // no events needed
}

TEST(ActionSequence, ZeroChunkStepSkipsWithoutTime) {
  sim::Simulation simulation;
  ActionSequence sequence{simulation};
  bool ran = false;
  sequence.add_step("nothing_to_do",
                    []() -> std::optional<sim::Duration> { return std::nullopt; });
  sequence.add_fixed("real", sim::seconds(1), [&] { ran = true; });
  sequence.run([](bool) {});
  simulation.run_all();
  EXPECT_TRUE(ran);
  EXPECT_EQ(simulation.now(), sim::kEpoch + sim::seconds(1));
}

TEST(ActionSequence, CurrentStepTracksProgress) {
  sim::Simulation simulation;
  ActionSequence sequence{simulation};
  sequence.add_fixed("first", sim::seconds(10));
  sequence.add_fixed("second", sim::seconds(10));
  sequence.run([](bool) {});
  EXPECT_EQ(sequence.current_step(), "first");
  simulation.run_until(simulation.now() + sim::seconds(11));
  EXPECT_EQ(sequence.current_step(), "second");
  simulation.run_all();
  EXPECT_EQ(sequence.current_step(), "(idle)");
}

TEST(ActionSequence, AbortAfterCompletionIsNoOp) {
  sim::Simulation simulation;
  ActionSequence sequence{simulation};
  sequence.add_fixed("a", sim::seconds(1));
  int done_calls = 0;
  sequence.run([&](bool) { ++done_calls; });
  simulation.run_all();
  sequence.abort();
  EXPECT_EQ(done_calls, 1);
}

}  // namespace
}  // namespace gw::core
