#include "core/schedule.h"

#include <gtest/gtest.h>

namespace gw::core {
namespace {

TEST(DaySchedule, ForStateMatchesTable2) {
  const auto s3 = DaySchedule::for_state(PowerState::kState3);
  EXPECT_EQ(s3.gps_slots.size(), 12u);
  // 12 slots at 2-hour spacing — the Fig 5 dip rhythm.
  EXPECT_EQ(s3.gps_slots[0], sim::hours(2));
  EXPECT_EQ(s3.gps_slots[11], sim::hours(24));

  const auto s2 = DaySchedule::for_state(PowerState::kState2);
  ASSERT_EQ(s2.gps_slots.size(), 1u);
  EXPECT_EQ(s2.gps_slots[0], sim::hours(24));

  EXPECT_TRUE(DaySchedule::for_state(PowerState::kState1).gps_slots.empty());
  EXPECT_TRUE(DaySchedule::for_state(PowerState::kState0).gps_slots.empty());
}

TEST(DaySchedule, SerializeParseRoundTrip) {
  for (const auto state : {PowerState::kState0, PowerState::kState1,
                           PowerState::kState2, PowerState::kState3}) {
    const auto original = DaySchedule::for_state(state, sim::hours(12));
    const auto image = original.serialize();
    const auto parsed = DaySchedule::parse(image);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed.value(), original);
  }
}

TEST(DaySchedule, CustomWakeTimeSurvivesRoundTrip) {
  const auto original =
      DaySchedule::for_state(PowerState::kState2, sim::hours(9.5));
  const auto parsed = DaySchedule::parse(original.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().wake_time, sim::minutes(570));
}

TEST(DaySchedule, CorruptedImageRejected) {
  auto image = DaySchedule::for_state(PowerState::kState3).serialize();
  image[5] ^= 0x01;
  EXPECT_FALSE(DaySchedule::parse(image).ok());
}

TEST(DaySchedule, TruncatedImageRejected) {
  const auto image = DaySchedule::for_state(PowerState::kState3).serialize();
  const std::span<const std::uint8_t> truncated(image.data(),
                                                image.size() - 5);
  EXPECT_FALSE(DaySchedule::parse(truncated).ok());
  EXPECT_FALSE(
      DaySchedule::parse(std::span<const std::uint8_t>{}).ok());
}

TEST(DaySchedule, BadMagicRejected) {
  auto image = DaySchedule::for_state(PowerState::kState2).serialize();
  // Flip the magic AND refresh the CRC, isolating the magic check.
  image[0] = 'X';
  const std::size_t body = image.size() - 4;
  const auto crc = util::crc32(
      std::span<const std::uint8_t>(image.data(), body));
  for (int b = 0; b < 4; ++b) {
    image[body + std::size_t(b)] = std::uint8_t((crc >> (8 * b)) & 0xff);
  }
  const auto parsed = DaySchedule::parse(image);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("magic"), std::string::npos);
}

TEST(DaySchedule, ImageIsCompact) {
  // It must fit comfortably in MSP430 RAM alongside the sample buffer.
  EXPECT_LE(DaySchedule::for_state(PowerState::kState3).serialize().size(),
            40u);
}

}  // namespace
}  // namespace gw::core
