#include "core/watchdog.h"

#include <gtest/gtest.h>

namespace gw::core {
namespace {

TEST(Watchdog, FiresAfterLimit) {
  sim::Simulation simulation;
  Watchdog watchdog{simulation};
  bool fired = false;
  watchdog.arm([&] { fired = true; });
  simulation.run_until(simulation.now() + sim::hours(2) - sim::seconds(1));
  EXPECT_FALSE(fired);
  simulation.run_until(simulation.now() + sim::seconds(2));
  EXPECT_TRUE(fired);
  EXPECT_TRUE(watchdog.expired());
  EXPECT_EQ(watchdog.expiry_count(), 1);
}

TEST(Watchdog, DisarmPreventsExpiry) {
  sim::Simulation simulation;
  Watchdog watchdog{simulation};
  bool fired = false;
  watchdog.arm([&] { fired = true; });
  simulation.run_until(simulation.now() + sim::hours(1));
  watchdog.disarm();
  simulation.run_until(simulation.now() + sim::hours(3));
  EXPECT_FALSE(fired);
  EXPECT_FALSE(watchdog.expired());
}

TEST(Watchdog, RearmRestartsTheClock) {
  sim::Simulation simulation;
  Watchdog watchdog{simulation};
  int fires = 0;
  watchdog.arm([&] { ++fires; });
  simulation.run_until(simulation.now() + sim::hours(1));
  watchdog.arm([&] { ++fires; });  // daily re-arm
  simulation.run_until(simulation.now() + sim::hours(1.5));
  EXPECT_EQ(fires, 0);  // old deadline cancelled
  simulation.run_until(simulation.now() + sim::hours(1));
  EXPECT_EQ(fires, 1);
}

TEST(Watchdog, RemainingCountsDown) {
  sim::Simulation simulation;
  Watchdog watchdog{simulation};
  watchdog.arm([] {});
  EXPECT_EQ(watchdog.remaining(), sim::hours(2));
  simulation.run_until(simulation.now() + sim::minutes(30));
  EXPECT_EQ(watchdog.remaining(), sim::minutes(90));
  watchdog.disarm();
  EXPECT_EQ(watchdog.remaining(), sim::Duration{0});
}

TEST(Watchdog, CustomLimit) {
  sim::Simulation simulation;
  Watchdog watchdog{simulation, sim::minutes(10)};
  bool fired = false;
  watchdog.arm([&] { fired = true; });
  simulation.run_until(simulation.now() + sim::minutes(11));
  EXPECT_TRUE(fired);
}

TEST(Watchdog, HungTransferScenario) {
  // §VI: "if something crashes in the system — for example a SCP transfer
  // hangs — the system does not remain running until its batteries are
  // depleted." The hung task never finishes; only the watchdog ends it.
  sim::Simulation simulation;
  Watchdog watchdog{simulation};
  bool power_cut = false;
  watchdog.arm([&] { power_cut = true; });
  // No other events: the hang means nothing is scheduled.
  simulation.run_until(simulation.now() + sim::days(1));
  EXPECT_TRUE(power_cut);
  EXPECT_EQ(watchdog.expiry_count(), 1);
}

}  // namespace
}  // namespace gw::core
