#include "core/power_policy.h"

#include <gtest/gtest.h>

namespace gw::core {
namespace {

using util::Volts;

TEST(PowerPolicy, Table2Thresholds) {
  PowerPolicy policy;
  EXPECT_EQ(policy.state_for(Volts{13.0}), PowerState::kState3);
  EXPECT_EQ(policy.state_for(Volts{12.5}), PowerState::kState3);
  EXPECT_EQ(policy.state_for(Volts{12.49}), PowerState::kState2);
  EXPECT_EQ(policy.state_for(Volts{12.0}), PowerState::kState2);
  EXPECT_EQ(policy.state_for(Volts{11.99}), PowerState::kState1);
  EXPECT_EQ(policy.state_for(Volts{11.5}), PowerState::kState1);
  EXPECT_EQ(policy.state_for(Volts{11.49}), PowerState::kState0);
  EXPECT_EQ(policy.state_for(Volts{9.0}), PowerState::kState0);
}

TEST(PowerPolicy, Table2Actions) {
  const auto s3 = PowerPolicy::actions_for(PowerState::kState3);
  EXPECT_TRUE(s3.probe_jobs);
  EXPECT_TRUE(s3.sensor_readings);
  EXPECT_EQ(s3.gps_readings_per_day, 12);
  EXPECT_TRUE(s3.gprs);

  const auto s2 = PowerPolicy::actions_for(PowerState::kState2);
  EXPECT_EQ(s2.gps_readings_per_day, 1);
  EXPECT_TRUE(s2.gprs);

  const auto s1 = PowerPolicy::actions_for(PowerState::kState1);
  EXPECT_EQ(s1.gps_readings_per_day, 0);
  EXPECT_TRUE(s1.gprs);

  const auto s0 = PowerPolicy::actions_for(PowerState::kState0);
  EXPECT_EQ(s0.gps_readings_per_day, 0);
  EXPECT_FALSE(s0.gprs);
  // Probe jobs and sensing continue in every state (Table 2 / §III).
  EXPECT_TRUE(s0.probe_jobs);
  EXPECT_TRUE(s0.sensor_readings);
}

TEST(PowerPolicy, StatesOrdered) {
  EXPECT_LT(PowerState::kState0, PowerState::kState1);
  EXPECT_LT(PowerState::kState2, PowerState::kState3);
  EXPECT_EQ(to_int(PowerState::kState3), 3);
  EXPECT_EQ(from_int(2), PowerState::kState2);
  EXPECT_EQ(from_int(-5), PowerState::kState0);
  EXPECT_EQ(from_int(9), PowerState::kState3);
}

TEST(PowerPolicy, DailyAverage) {
  std::vector<Volts> samples;
  for (int i = 0; i < 48; ++i) samples.push_back(Volts{12.0 + (i % 2) * 0.5});
  const auto avg = daily_average(samples);
  ASSERT_TRUE(avg.has_value());
  EXPECT_NEAR(avg->value(), 12.25, 1e-12);
}

TEST(PowerPolicy, DailyAverageEmptyBatch) {
  EXPECT_FALSE(daily_average({}).has_value());
}

TEST(PowerPolicy, AveragingBeatsMiddaySpotReading) {
  // §III's rationale: the midday sample is the daily *peak* (solar charge),
  // so a spot reading overstates bank health versus the average.
  std::vector<Volts> samples;
  for (int half_hour = 0; half_hour < 48; ++half_hour) {
    const double hour = half_hour * 0.5;
    const double solar_lift = (hour > 8 && hour < 16) ? 1.2 : 0.0;
    samples.push_back(Volts{12.1 + solar_lift});
  }
  const auto avg = daily_average(samples);
  const Volts midday = samples[24];
  ASSERT_TRUE(avg.has_value());
  EXPECT_LT(avg->value(), midday.value());
  PowerPolicy policy;
  EXPECT_EQ(policy.state_for(midday), PowerState::kState3);   // misleading
  EXPECT_EQ(policy.state_for(*avg), PowerState::kState2);     // honest
}

class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, MonotoneInVoltage) {
  PowerPolicy policy;
  const double v = GetParam();
  const auto state = policy.state_for(Volts{v});
  const auto state_above = policy.state_for(Volts{v + 0.01});
  EXPECT_GE(state_above, state);
  const auto actions = PowerPolicy::actions_for(state);
  const auto actions_above = PowerPolicy::actions_for(state_above);
  EXPECT_GE(actions_above.gps_readings_per_day, actions.gps_readings_per_day);
}

INSTANTIATE_TEST_SUITE_P(VoltageRange, ThresholdSweep,
                         ::testing::Values(10.0, 11.0, 11.49, 11.5, 11.75,
                                           11.99, 12.0, 12.25, 12.49, 12.5,
                                           13.0, 14.0, 14.5));

}  // namespace
}  // namespace gw::core
