#include "core/recovery.h"

#include <gtest/gtest.h>

#include "env/environment.h"

namespace gw::core {
namespace {

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig power_config;
  power::PowerSystem power{simulation, environment, power_config};
  hw::Msp430 msp{simulation, power, util::Rng{7}};
  hw::DgpsReceiver dgps{simulation, power, util::Rng{3}};
};

TEST(Recovery, TrustedClockNeedsNothing) {
  Fixture f;
  RecoveryManager recovery{f.simulation, f.msp, f.dgps, util::Rng{11}};
  recovery.record_successful_run();
  f.simulation.run_until(f.simulation.now() + sim::days(1));
  EXPECT_FALSE(recovery.rtc_untrusted());
  EXPECT_EQ(recovery.attempt(), RecoveryOutcome::kClockTrusted);
}

TEST(Recovery, DetectsEpochResetViaLastRun) {
  Fixture f;
  RecoveryManager recovery{f.simulation, f.msp, f.dgps, util::Rng{11}};
  recovery.record_successful_run();
  f.msp.brown_out();  // RTC to 1970
  EXPECT_TRUE(recovery.rtc_untrusted());
}

TEST(Recovery, NoHistoryMeansNoDetection) {
  // A station that never ran cannot distinguish epoch from truth — matches
  // the paper's reliance on the stored last-run timestamp.
  Fixture f;
  RecoveryManager recovery{f.simulation, f.msp, f.dgps, util::Rng{11}};
  f.msp.brown_out();
  EXPECT_FALSE(recovery.rtc_untrusted());
}

TEST(Recovery, GpsResyncRestoresClock) {
  Fixture f;
  RecoveryManager recovery{f.simulation, f.msp, f.dgps, util::Rng{11}};
  recovery.record_successful_run();
  f.msp.brown_out();
  // fix_probability 0.92: the first draw with this seed succeeds.
  const auto outcome = recovery.attempt();
  ASSERT_EQ(outcome, RecoveryOutcome::kResyncedByGps);
  EXPECT_FALSE(recovery.rtc_untrusted());
  // Clock is now within the fix-acquisition window of truth.
  EXPECT_LE(std::abs(f.msp.rtc_error_ms()), 91'000);
  EXPECT_FALSE(f.dgps.powered());  // powered down after the fix
}

TEST(Recovery, DefersWhenGpsFails) {
  Fixture f;
  hw::DgpsConfig no_fix;
  no_fix.fix_probability = 0.0;
  hw::DgpsReceiver blind{f.simulation, f.power, util::Rng{3}, no_fix};
  RecoveryManager recovery{f.simulation, f.msp, blind, util::Rng{11}};
  recovery.record_successful_run();
  f.msp.brown_out();
  // §IV: "if the system cannot set the time using GPS then the system will
  // sleep for a day and try again."
  EXPECT_EQ(recovery.attempt(), RecoveryOutcome::kDeferred);
  EXPECT_TRUE(recovery.rtc_untrusted());
  EXPECT_EQ(recovery.config().retry_interval, sim::days(1));
  EXPECT_EQ(recovery.deferrals(), 1);
}

// A modem that always registers and never drops, so NTP-path tests are
// deterministic.
hw::GprsConfig reliable_gprs() {
  hw::GprsConfig config;
  config.registration_success = 1.0;
  config.drop_per_minute = 0.0;
  return config;
}

TEST(Recovery, NtpFallbackRescuesGpsFailure) {
  Fixture f;
  hw::DgpsConfig no_fix;
  no_fix.fix_probability = 0.0;
  hw::DgpsReceiver blind{f.simulation, f.power, util::Rng{3}, no_fix};
  hw::GprsModem gprs{f.simulation, f.power, util::Rng{5}, reliable_gprs()};
  RecoveryConfig config;
  config.ntp_fallback = true;  // §IV extension
  config.ntp_success = 1.0;
  RecoveryManager recovery{f.simulation, f.msp, blind, util::Rng{11}, config};
  recovery.attach_modem(&gprs);
  recovery.record_successful_run();
  f.msp.brown_out();
  EXPECT_EQ(recovery.attempt(), RecoveryOutcome::kResyncedByNtp);
  EXPECT_FALSE(recovery.rtc_untrusted());
  EXPECT_EQ(recovery.ntp_resyncs(), 1);
  // The resync rode a real session.
  EXPECT_EQ(gprs.sessions_attempted(), 1);
  EXPECT_GT(gprs.bytes_sent().count(), 0);
}

TEST(Recovery, NtpFallbackUnavailableWithoutModem) {
  // ntp_fallback configured but no modem attached (e.g. the bench fixture
  // predating the wiring): the fallback cannot run and the attempt defers.
  Fixture f;
  hw::DgpsConfig no_fix;
  no_fix.fix_probability = 0.0;
  hw::DgpsReceiver blind{f.simulation, f.power, util::Rng{3}, no_fix};
  RecoveryConfig config;
  config.ntp_fallback = true;
  config.ntp_success = 1.0;
  RecoveryManager recovery{f.simulation, f.msp, blind, util::Rng{11}, config};
  recovery.record_successful_run();
  f.msp.brown_out();
  EXPECT_EQ(recovery.attempt(), RecoveryOutcome::kDeferred);
}

TEST(Recovery, NtpResyncChargesModemEnergyAndDataCost) {
  // Regression for the free-NTP bug: the fallback used to write the RTC
  // without powering the modem, so a resync cost no energy and no data.
  // Now it must land in the same ledgers a daily upload hits.
  Fixture f;
  hw::DgpsConfig no_fix;
  no_fix.fix_probability = 0.0;
  hw::DgpsReceiver blind{f.simulation, f.power, util::Rng{3}, no_fix};
  hw::GprsModem gprs{f.simulation, f.power, util::Rng{5}, reliable_gprs()};
  RecoveryConfig config;
  config.ntp_fallback = true;
  config.ntp_success = 1.0;
  RecoveryManager recovery{f.simulation, f.msp, blind, util::Rng{11}, config};
  recovery.attach_modem(&gprs);
  recovery.record_successful_run();
  f.power.start();
  f.msp.brown_out();
  ASSERT_EQ(recovery.attempt(), RecoveryOutcome::kResyncedByNtp);
  // The modem is held powered for the session duration and cuts itself off;
  // the power tick integrates the energy.
  EXPECT_TRUE(gprs.powered());
  f.simulation.run_until(f.simulation.now() + sim::minutes(10));
  EXPECT_FALSE(gprs.powered());
  EXPECT_GT(f.power.consumed_by("gprs").value(), 0.0);
  EXPECT_GT(gprs.data_cost(), 0.0);
  // Clock restored to within the session length of truth (registration +
  // a short transfer), not exactly.
  EXPECT_LE(std::abs(f.msp.rtc_error_ms()), 120'000);
}

TEST(Recovery, RetryLoopEventuallySucceeds) {
  Fixture f;
  hw::DgpsConfig flaky;
  flaky.fix_probability = 0.3;
  hw::DgpsReceiver dgps{f.simulation, f.power, util::Rng{3}, flaky};
  RecoveryManager recovery{f.simulation, f.msp, dgps, util::Rng{11}};
  recovery.record_successful_run();
  f.msp.brown_out();
  int days = 0;
  while (recovery.rtc_untrusted() && days < 30) {
    (void)recovery.attempt();
    f.simulation.run_until(f.simulation.now() +
                           recovery.config().retry_interval);
    ++days;
  }
  EXPECT_FALSE(recovery.rtc_untrusted());
  EXPECT_LT(days, 30);
  EXPECT_GE(recovery.attempts(), 1);
}

TEST(Recovery, CountersConsistent) {
  Fixture f;
  RecoveryManager recovery{f.simulation, f.msp, f.dgps, util::Rng{11}};
  recovery.record_successful_run();
  f.msp.brown_out();
  for (int i = 0; i < 5 && recovery.rtc_untrusted(); ++i) {
    (void)recovery.attempt();
  }
  EXPECT_EQ(recovery.attempts(),
            recovery.gps_resyncs() + recovery.ntp_resyncs() +
                recovery.deferrals());
}

}  // namespace
}  // namespace gw::core
