#include "core/log_manager.h"

#include <gtest/gtest.h>

namespace gw::core {
namespace {

TEST(LogManager, PassesThroughUnderBudget) {
  util::Logger logger;
  LogManager manager{logger};
  manager.info(0, "gps", "fix acquired");
  manager.debug(0, "gps", "raw nmea line");
  EXPECT_EQ(logger.records().size(), 2u);
  EXPECT_EQ(manager.total_suppressed(), 0u);
}

TEST(LogManager, SuppressesFloodOverBudget) {
  util::Logger logger;
  LogBudgetConfig config;
  config.component_daily_budget_bytes = 2048;
  LogManager manager{logger, config};
  // The §VI scenario: thousands of per-frame debug lines.
  for (int i = 0; i < 5000; ++i) {
    manager.debug(i, "probes", "rx frame seq=" + std::to_string(i));
  }
  EXPECT_LT(logger.pending_bytes(), 3000u);
  EXPECT_GT(manager.total_suppressed(), 4000u);
  EXPECT_GT(manager.suppressed_for("probes"), 4000u);
  EXPECT_EQ(manager.suppressed_for("gps"), 0u);
}

TEST(LogManager, WarningsAlwaysGetThrough) {
  util::Logger logger;
  LogBudgetConfig config;
  config.component_daily_budget_bytes = 256;
  LogManager manager{logger, config};
  for (int i = 0; i < 1000; ++i) {
    manager.debug(i, "probes", "noise noise noise noise");
  }
  const auto records_before = logger.records().size();
  manager.warn(1001, "probes", "probe 24 silent");
  manager.error(1002, "probes", "protocol abort");
  EXPECT_EQ(logger.records().size(), records_before + 2);
}

TEST(LogManager, BudgetsArePerComponent) {
  util::Logger logger;
  LogBudgetConfig config;
  config.component_daily_budget_bytes = 512;
  LogManager manager{logger, config};
  for (int i = 0; i < 200; ++i) {
    manager.debug(i, "probes", "flood flood flood flood flood");
  }
  // A quiet component is unaffected by the noisy one.
  manager.info(1000, "power", "daily avg 12.40 V");
  EXPECT_GT(manager.suppressed_for("probes"), 0u);
  bool power_seen = false;
  for (const auto& record : logger.records()) {
    if (record.component == "power") power_seen = true;
  }
  EXPECT_TRUE(power_seen);
}

TEST(LogManager, NewDayEmitsSummaryAndResets) {
  util::Logger logger;
  LogBudgetConfig config;
  config.component_daily_budget_bytes = 512;
  LogManager manager{logger, config};
  for (int i = 0; i < 500; ++i) {
    manager.debug(i, "probes", "flood flood flood");
  }
  const std::size_t suppressed = manager.suppressed_for("probes");
  ASSERT_GT(suppressed, 0u);
  manager.new_day(100000);
  // Summary line present.
  bool summary_seen = false;
  for (const auto& record : logger.records()) {
    if (record.message.find("log budget: suppressed") != std::string::npos) {
      summary_seen = true;
    }
  }
  EXPECT_TRUE(summary_seen);
  // Budget reset: the component can log again.
  manager.debug(100001, "probes", "fresh day");
  EXPECT_EQ(manager.suppressed_for("probes"), 0u);
}

TEST(LogManager, SavedTransferSeconds) {
  util::Logger logger;
  LogBudgetConfig config;
  config.component_daily_budget_bytes = 128;
  LogManager manager{logger, config};
  for (int i = 0; i < 3000; ++i) {
    manager.debug(i, "probes", std::string(300, 'x'));
  }
  // ~900 KB suppressed at 5000 bps ≈ 24 min saved.
  const double saved = manager.saved_transfer_seconds(
      util::BitsPerSecond{5000.0});
  EXPECT_GT(saved, 10.0 * 60.0);
  EXPECT_LT(saved, 60.0 * 60.0);
}

}  // namespace
}  // namespace gw::core
