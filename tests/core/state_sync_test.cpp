#include "core/state_sync.h"

#include <gtest/gtest.h>

namespace gw::core {
namespace {

TEST(SyncRules, FetchFailureFallsBackToLocal) {
  // §III: "if the fetching of the over-ride state from the server fails for
  // any reason then the system will just rely on its local state."
  EXPECT_EQ(SyncRules::apply(PowerState::kState3, std::nullopt),
            PowerState::kState3);
  EXPECT_EQ(SyncRules::apply(PowerState::kState0, std::nullopt),
            PowerState::kState0);
}

TEST(SyncRules, OverrideCanLowerButNotRaise) {
  // "does not allow the state to be set higher than the battery voltage
  // allows."
  EXPECT_EQ(SyncRules::apply(PowerState::kState3, PowerState::kState2),
            PowerState::kState2);
  EXPECT_EQ(SyncRules::apply(PowerState::kState1, PowerState::kState3),
            PowerState::kState1);
}

TEST(SyncRules, CannotBeForcedToStateZero) {
  // "or for the station to be forced into power state 0."
  EXPECT_EQ(SyncRules::apply(PowerState::kState3, PowerState::kState0),
            PowerState::kState1);
  EXPECT_EQ(SyncRules::apply(PowerState::kState2, PowerState::kState0),
            PowerState::kState1);
}

TEST(SyncRules, VoltageZeroStillWinsOverOverride) {
  // A flat battery is state 0 no matter what the server says.
  EXPECT_EQ(SyncRules::apply(PowerState::kState0, PowerState::kState3),
            PowerState::kState0);
}

TEST(SyncServer, ReturnsLowestReportedState) {
  SyncServer server;
  server.report_state("base", PowerState::kState3);
  server.report_state("reference", PowerState::kState2);
  ASSERT_TRUE(server.override_for_client().has_value());
  EXPECT_EQ(*server.override_for_client(), PowerState::kState2);
}

TEST(SyncServer, NoReportsNoOverride) {
  SyncServer server;
  EXPECT_FALSE(server.override_for_client().has_value());
}

TEST(SyncServer, LatestReportWins) {
  SyncServer server;
  server.report_state("base", PowerState::kState1);
  server.report_state("base", PowerState::kState3);
  EXPECT_EQ(*server.override_for_client(), PowerState::kState3);
  EXPECT_EQ(*server.reported_state("base"), PowerState::kState3);
  EXPECT_FALSE(server.reported_state("ghost").has_value());
}

TEST(SyncServer, ManualOverrideFloorsTheResult) {
  // Fig 5's observed behaviour: voltage allowed state 3 but the system "was
  // being held in state 2 by the remote override system."
  SyncServer server;
  server.report_state("base", PowerState::kState3);
  server.report_state("reference", PowerState::kState3);
  server.set_manual_override(PowerState::kState2);
  EXPECT_EQ(*server.override_for_client(), PowerState::kState2);
  // Released: stations converge back to 3.
  server.set_manual_override(std::nullopt);
  EXPECT_EQ(*server.override_for_client(), PowerState::kState3);
}

TEST(SyncServer, StaleReportExpiresInsteadOfPinningTheFleet) {
  // Regression for the silent-station pinning bug: a station that browned
  // out after reporting state 1 used to hold every other station at 1
  // forever. Its report must age out of the min-rule.
  SyncServer server;
  const auto start = sim::at_midnight(2008, 10, 1);
  server.report_state("base", PowerState::kState1, start);
  server.report_state("reference", PowerState::kState3, start);
  // Fresh: the min rule sees both.
  EXPECT_EQ(*server.override_for_client(start), PowerState::kState1);
  // The base goes silent (flat battery); the reference keeps reporting.
  const auto later = start + server.max_report_age() + sim::days(2);
  server.report_state("reference", PowerState::kState3, later);
  EXPECT_EQ(*server.override_for_client(later), PowerState::kState3);
  // The silent station's last word is still on record, just not binding.
  EXPECT_EQ(*server.reported_state("base"), PowerState::kState1);
  // When it comes back, its reports count again.
  server.report_state("base", PowerState::kState2, later);
  EXPECT_EQ(*server.override_for_client(later), PowerState::kState2);
}

TEST(SyncServer, AllReportsStaleMeansNothingToSay) {
  SyncServer server;
  const auto start = sim::at_midnight(2008, 10, 1);
  server.report_state("base", PowerState::kState1, start);
  const auto later = start + server.max_report_age() + sim::days(1);
  EXPECT_FALSE(server.override_for_client(later).has_value());
  // ...unless an operator override is standing: that never expires.
  server.set_manual_override(PowerState::kState2);
  EXPECT_EQ(*server.override_for_client(later), PowerState::kState2);
}

TEST(SyncServer, TimestampFreeCallersStayFresh) {
  // Pre-expiry callers pass no timestamps; everything is reported and read
  // at the epoch, so nothing ever ages out and behaviour is unchanged.
  SyncServer server;
  server.report_state("base", PowerState::kState1);
  server.report_state("reference", PowerState::kState3);
  EXPECT_EQ(*server.override_for_client(), PowerState::kState1);
}

TEST(SyncServer, MinRuleIsScopedToTheSyncGroup) {
  // Two dGPS pairs on one server: each pair's min-rule must see only its
  // own members, not the whole fleet.
  SyncServer server;
  server.assign_group("a1", "pair_a");
  server.assign_group("a2", "pair_a");
  server.assign_group("b1", "pair_b");
  server.assign_group("b2", "pair_b");
  server.report_state("a1", PowerState::kState1);
  server.report_state("a2", PowerState::kState3);
  server.report_state("b1", PowerState::kState3);
  server.report_state("b2", PowerState::kState2);
  EXPECT_EQ(*server.override_for_client("a1"), PowerState::kState1);
  EXPECT_EQ(*server.override_for_client("a2"), PowerState::kState1);
  EXPECT_EQ(*server.override_for_client("b1"), PowerState::kState2);
  EXPECT_EQ(*server.override_for_client("b2"), PowerState::kState2);
  // The legacy fleet-wide view still folds everyone.
  EXPECT_EQ(*server.override_for_client(), PowerState::kState1);
}

TEST(SyncServer, UngroupedStationSelfSyncs) {
  // An ungrouped station is bound only by its own report (and any manual
  // override) — another station's low state must not drag it down.
  SyncServer server;
  server.report_state("lone", PowerState::kState3);
  server.report_state("other", PowerState::kState1);
  EXPECT_EQ(*server.override_for_client("lone"), PowerState::kState3);
  // Before it has reported anything, the server has nothing to say to it.
  EXPECT_FALSE(server.override_for_client("fresh").has_value());
}

TEST(SyncServer, ExpiryUnpinsSilentMemberOfLargeGroup) {
  // A 3-station group: the member that browns out and goes silent must age
  // out of its group's min-rule, not pin it forever.
  SyncServer server;
  for (const char* name : {"g1", "g2", "g3"}) {
    server.assign_group(name, "trio");
  }
  const auto start = sim::at_midnight(2008, 10, 1);
  server.report_state("g1", PowerState::kState1, start);
  server.report_state("g2", PowerState::kState3, start);
  server.report_state("g3", PowerState::kState2, start);
  EXPECT_EQ(*server.override_for_client("g2", start), PowerState::kState1);
  // g1 goes silent; the others keep reporting past its expiry horizon.
  const auto later = start + server.max_report_age() + sim::days(2);
  server.report_state("g2", PowerState::kState3, later);
  server.report_state("g3", PowerState::kState2, later);
  EXPECT_EQ(*server.override_for_client("g2", later), PowerState::kState2);
  // When it comes back, its reports bind the group again.
  server.report_state("g1", PowerState::kState1, later);
  EXPECT_EQ(*server.override_for_client("g2", later), PowerState::kState1);
}

TEST(SyncServer, GroupOverrideScopedToOneGroupNotTheFleet) {
  SyncServer server;
  server.assign_group("a1", "pair_a");
  server.assign_group("a2", "pair_a");
  server.assign_group("b1", "pair_b");
  server.assign_group("b2", "pair_b");
  for (const char* name : {"a1", "a2", "b1", "b2"}) {
    server.report_state(name, PowerState::kState3);
  }
  server.set_group_override("pair_a", PowerState::kState1);
  EXPECT_EQ(*server.override_for_client("a1"), PowerState::kState1);
  EXPECT_EQ(*server.override_for_client("a2"), PowerState::kState1);
  // pair_b is untouched by pair_a's override.
  EXPECT_EQ(*server.override_for_client("b1"), PowerState::kState3);
  // Clearing restores the group's own min-rule.
  server.set_group_override("pair_a", std::nullopt);
  EXPECT_EQ(*server.override_for_client("a1"), PowerState::kState3);
  // The fleet-wide manual override still floors everyone.
  server.set_manual_override(PowerState::kState2);
  EXPECT_EQ(*server.override_for_client("a1"), PowerState::kState2);
  EXPECT_EQ(*server.override_for_client("b1"), PowerState::kState2);
}

TEST(SyncServer, GroupMembershipIntrospection) {
  SyncServer server;
  server.assign_group("a1", "pair_a");
  server.assign_group("a2", "pair_a");
  server.assign_group("b1", "pair_b");
  EXPECT_EQ(server.group_of("a1"), "pair_a");
  EXPECT_EQ(server.group_of("ghost"), "");
  EXPECT_EQ(server.group_members("pair_a"),
            (std::vector<std::string>{"a1", "a2"}));
  EXPECT_EQ(server.groups(),
            (std::vector<std::string>{"pair_a", "pair_b"}));
  // Reassignment moves, empty removes.
  server.assign_group("a2", "pair_b");
  EXPECT_EQ(server.group_members("pair_a"),
            (std::vector<std::string>{"a1"}));
  server.assign_group("a1", "");
  EXPECT_EQ(server.group_of("a1"), "");
  EXPECT_TRUE(server.group_members("pair_a").empty());
}

TEST(SyncServer, ReportLogIsOptInAndDrainsInReportOrder) {
  SyncServer server;
  // Off by default: the serial fleet pays nothing for the sharded hook.
  server.report_state("base", PowerState::kState3, sim::SimTime{100});
  EXPECT_FALSE(server.report_log_enabled());
  EXPECT_TRUE(server.drain_report_log().empty());

  server.enable_report_log();
  server.report_state("base", PowerState::kState2, sim::SimTime{200});
  server.report_state("reference", PowerState::kState1, sim::SimTime{250});
  const auto drained = server.drain_report_log();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].station, "base");
  EXPECT_EQ(drained[0].state, PowerState::kState2);
  EXPECT_EQ(drained[0].reported_at, sim::SimTime{200});
  EXPECT_EQ(drained[1].station, "reference");
  // Draining moves: a second drain is empty until the next report.
  EXPECT_TRUE(server.drain_report_log().empty());
}

TEST(SyncServer, RecordRemoteStateUpdatesLedgerWithoutEcho) {
  // A relayed peer report must enter the min-rule ledger but NOT the
  // report log — logging it would bounce the report back to the peer at
  // the next drain, forever.
  SyncServer server;
  server.enable_report_log();
  server.assign_group("base", "pair");
  server.assign_group("reference", "pair");
  server.record_remote_state("reference", PowerState::kState1,
                             sim::SimTime{500});
  EXPECT_TRUE(server.drain_report_log().empty());
  EXPECT_EQ(server.override_for_client("base", sim::SimTime{600}),
            PowerState::kState1);
}

TEST(SyncServer, FutureDatedReportCannotPinTheGroup) {
  // Regression: freshness was computed as `now - reported_at > max_age`,
  // so a report from the future had a *negative* age — fresh forever. One
  // station with a drifted RTC claiming state 1 next week pinned its
  // group's min-rule to state 1 indefinitely, long after its report should
  // have aged out. Future-dated reports must be ignored outright.
  SyncServer server;
  server.set_max_report_age(sim::days(5));
  server.assign_group("base", "pair");
  server.assign_group("reference", "pair");
  const sim::SimTime now = sim::to_time({2008, 9, 10, 12, 0, 0});
  server.report_state("base", PowerState::kState3, now);
  // reference's RTC runs a month fast: its state-1 report is "from" Oct 10.
  server.report_state("reference", PowerState::kState1,
                      now + sim::days(30));
  // The future report is not evidence: base sees only its own state.
  EXPECT_EQ(server.override_for_client("base", now), PowerState::kState3);
  EXPECT_GT(server.future_reports_ignored(), 0u);
  // Fast-forward past max_report_age: with the old `age > max` arithmetic
  // the drifted report would *still* be fresh 40 days on. It only counts
  // once real time reaches its claimed timestamp.
  const sim::SimTime later = now + sim::days(31);
  EXPECT_EQ(server.override_for_client("base", later), PowerState::kState1);
}

TEST(SyncServer, FutureReportIgnoredIsJournalled) {
  SyncServer server;
  obs::EventJournal journal;
  server.set_hooks(obs::Hooks{nullptr, &journal});
  const sim::SimTime now = sim::to_time({2008, 9, 10, 0, 0, 0});
  server.report_state("base", PowerState::kState2, now + sim::hours(2));
  EXPECT_FALSE(server.override_for_client("base", now).has_value());
  ASSERT_EQ(journal.count(obs::EventType::kFutureReport), 1u);
  const auto events = journal.of_type(obs::EventType::kFutureReport);
  EXPECT_EQ(events[0].component, "state_sync");
  EXPECT_DOUBLE_EQ(events[0].a, 7200.0);  // seconds ahead
  EXPECT_DOUBLE_EQ(events[0].b, 2.0);     // the state it claimed
  // Honest reports journal nothing.
  server.report_state("base", PowerState::kState2, now);
  EXPECT_EQ(server.override_for_client("base", now + sim::hours(1)),
            PowerState::kState2);
  EXPECT_EQ(journal.count(obs::EventType::kFutureReport), 1u);
}

TEST(SyncServer, ReportExactlyAtMaxAgeIsStillFresh) {
  // The freshness comparison is strict (`age > max`): a report exactly
  // max_report_age old still binds; one millisecond older does not.
  SyncServer server;
  server.set_max_report_age(sim::days(5));
  const sim::SimTime reported = sim::to_time({2008, 9, 1, 0, 0, 0});
  server.report_state("base", PowerState::kState1, reported);
  EXPECT_EQ(server.override_for_client("base", reported + sim::days(5)),
            PowerState::kState1);
  EXPECT_FALSE(
      server
          .override_for_client(
              "base", reported + sim::days(5) + sim::milliseconds(1))
          .has_value());
}

TEST(SyncServer, GroupViewReflectsLedgerConvergence) {
  SyncServer server;
  server.assign_group("base", "pair");
  server.assign_group("reference", "pair");
  const sim::SimTime now = sim::to_time({2008, 9, 10, 0, 0, 0});

  // No reports yet: two members, none fresh, not converged.
  auto view = server.group_view("pair", now);
  EXPECT_EQ(view.members, 2);
  EXPECT_EQ(view.fresh, 0);
  EXPECT_FALSE(view.converged);

  server.report_state("base", PowerState::kState2, now);
  view = server.group_view("pair", now);
  EXPECT_EQ(view.fresh, 1);
  EXPECT_FALSE(view.converged);

  server.report_state("reference", PowerState::kState2, now);
  view = server.group_view("pair", now);
  EXPECT_EQ(view.fresh, 2);
  EXPECT_TRUE(view.converged);
  EXPECT_EQ(view.state, PowerState::kState2);

  // Disagreement: fresh but not converged.
  server.report_state("reference", PowerState::kState1, now);
  view = server.group_view("pair", now);
  EXPECT_EQ(view.fresh, 2);
  EXPECT_FALSE(view.converged);

  // Unknown group: the empty view.
  view = server.group_view("ghost", now);
  EXPECT_EQ(view.members, 0);
  EXPECT_FALSE(view.converged);
}

TEST(SyncServer, ReportedStationsListsLedgerInNameOrder) {
  SyncServer server;
  server.report_state("weather", PowerState::kState3);
  server.report_state("base", PowerState::kState2);
  server.report_state("reference", PowerState::kState1);
  const auto stations = server.reported_stations();
  ASSERT_EQ(stations.size(), 3u);
  EXPECT_EQ(stations[0], "base");
  EXPECT_EQ(stations[1], "reference");
  EXPECT_EQ(stations[2], "weather");
}

TEST(SyncServer, EndToEndKeepsStationsInLockstep) {
  // Both stations apply the min rule, so dGPS schedules match even though
  // their batteries differ.
  SyncServer server;
  const auto base_local = PowerState::kState3;
  const auto ref_local = PowerState::kState2;
  server.report_state("base", base_local);
  server.report_state("reference", ref_local);
  const auto base_final =
      SyncRules::apply(base_local, server.override_for_client());
  const auto ref_final =
      SyncRules::apply(ref_local, server.override_for_client());
  EXPECT_EQ(base_final, ref_final);
  EXPECT_EQ(base_final, PowerState::kState2);
}

}  // namespace
}  // namespace gw::core
