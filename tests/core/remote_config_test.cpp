#include "core/remote_config.h"

#include <gtest/gtest.h>

namespace gw::core {
namespace {

ConfigUpdate make_update(std::uint32_t version) {
  ConfigUpdate update;
  update.version = version;
  update.entries["probe.max_rounds"] = "6";
  update.entries["probe.rerequest_all_ratio"] = "0.35";
  update.entries["log.verbose"] = "true";
  update.seal();
  return update;
}

TEST(RemoteConfig, AppliesSealedUpdate) {
  RemoteConfig config;
  ASSERT_TRUE(config.apply(make_update(1)).ok());
  EXPECT_EQ(config.version(), 1u);
  EXPECT_EQ(config.get_int("probe.max_rounds", 4), 6);
  EXPECT_DOUBLE_EQ(config.get_double("probe.rerequest_all_ratio", 0.5), 0.35);
  EXPECT_TRUE(config.get_bool("log.verbose", false));
  EXPECT_EQ(config.applied(), 1);
}

TEST(RemoteConfig, RejectsTamperedUpdate) {
  RemoteConfig config;
  auto update = make_update(1);
  update.entries["probe.max_rounds"] = "99";  // changed after sealing
  EXPECT_FALSE(config.apply(update).ok());
  EXPECT_EQ(config.version(), 0u);
  EXPECT_FALSE(config.get("probe.max_rounds").has_value());
  EXPECT_EQ(config.rejected(), 1);
}

TEST(RemoteConfig, RejectsStaleAndReplayedVersions) {
  RemoteConfig config;
  ASSERT_TRUE(config.apply(make_update(5)).ok());
  EXPECT_FALSE(config.apply(make_update(5)).ok());  // replay
  EXPECT_FALSE(config.apply(make_update(3)).ok());  // stale
  ASSERT_TRUE(config.apply(make_update(6)).ok());
  EXPECT_EQ(config.version(), 6u);
}

TEST(RemoteConfig, AtomicReplacement) {
  RemoteConfig config;
  ASSERT_TRUE(config.apply(make_update(1)).ok());
  ConfigUpdate next;
  next.version = 2;
  next.entries["only.key"] = "x";
  next.seal();
  ASSERT_TRUE(config.apply(next).ok());
  // Old keys are gone: no half-merged state.
  EXPECT_FALSE(config.get("probe.max_rounds").has_value());
  EXPECT_EQ(config.get("only.key").value_or(""), "x");
}

TEST(RemoteConfig, TypedGettersFallBackOnGarbage) {
  RemoteConfig config;
  ConfigUpdate update;
  update.version = 1;
  update.entries["n"] = "not-a-number";
  update.seal();
  ASSERT_TRUE(config.apply(update).ok());
  EXPECT_EQ(config.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(config.get_double("n", 1.5), 1.5);
  EXPECT_FALSE(config.get_bool("n", false));
  EXPECT_EQ(config.get_int("missing", 42), 42);
}

TEST(RemoteConfig, CanonicalEncodingIsKeyOrdered) {
  ConfigUpdate a;
  a.version = 1;
  a.entries["zeta"] = "1";
  a.entries["alpha"] = "2";
  ConfigUpdate b;
  b.version = 1;
  b.entries["alpha"] = "2";
  b.entries["zeta"] = "1";
  EXPECT_EQ(a.canonical_encoding(), b.canonical_encoding());
}

}  // namespace
}  // namespace gw::core
