// Shape-stability sweeps: the figure-level shapes the paper reports must
// hold across seeds, not just for the bench's seed. These are the
// regression guards for model recalibrations — plus the fleet-refactor
// guard: the two-station Deployment preset must keep exporting the exact
// bytes the hand-wired pre-fleet assembly produced.
#include <gtest/gtest.h>

#include <string>

#include "env/environment.h"
#include "obs/export.h"
#include "sim/trace_export.h"
#include "station/deployment.h"

namespace gw {
namespace {

// Renders the full observable surface of a two-station run — per-station
// metrics + journals, fault sinks, and the Fig 5/6 trace series — as one
// deterministic JSON string.
std::string render_two_station_export(station::Fleet& fleet,
                                      std::uint64_t seed) {
  obs::BenchReport report;
  report.bench = "shape_probe";
  report.meta = {{"seed", std::to_string(seed)}};
  report.sections = {
      {"base", &fleet.station(0).metrics(), &fleet.station(0).journal()},
      {"reference", &fleet.station(1).metrics(),
       &fleet.station(1).journal()},
      {"fault", &fleet.fault_metrics(), &fleet.fault_journal()}};
  report.series = sim::to_obs_series(
      fleet.trace(), {"base.voltage", "base.state", "base.soc",
                      "reference.voltage", "reference.state",
                      "probe21.conductivity", "probe24.conductivity"});
  return obs::to_json(report);
}

TEST(FleetRefactor, DeploymentPresetExportsMatchEquivalentFleet) {
  // The refactor contract: Deployment is *nothing but* a FleetConfig
  // preset. Running the preset through Deployment and running its
  // to_fleet_config() through a bare Fleet must yield byte-identical
  // trace/metrics/journal exports — legacy probe naming included.
  station::DeploymentConfig config;
  config.seed = 20081019;
  config.fault_spec =
      "gprs_outage start=5d duration=2d severity=1.0\n"
      "server_down start=9d duration=12h\n";
  station::Deployment deployment{config};
  station::Fleet fleet{config.to_fleet_config()};
  deployment.run_days(20.0);
  fleet.run_days(20.0);
  const std::string via_preset =
      render_two_station_export(deployment.fleet(), config.seed);
  const std::string via_fleet = render_two_station_export(fleet, config.seed);
  EXPECT_EQ(via_preset, via_fleet);
  EXPECT_EQ(via_preset.find("{\"schema\":\"glacsweb.bench.v1\""), 0u);
  // The legacy namespace survived: bare probe ids, no station prefix.
  EXPECT_TRUE(deployment.trace().has_series("probe21.conductivity"));
  EXPECT_FALSE(deployment.trace().has_series("base/probe21.conductivity"));
}

class ShapeSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShapeSeeds, MeltOnsetLandsInSpring) {
  // Fig 6's defining feature: basal melt arrives at the end of winter.
  env::Environment environment{GetParam()};
  sim::SimTime onset{0};
  for (int day = 0; day < 365; ++day) {
    const auto t = sim::at_midnight(2009, 1, 1) + sim::days(day);
    const double w =
        environment.melt().water_index(t, environment.temperature());
    if (w > 0.3) {
      onset = t;
      break;
    }
  }
  ASSERT_NE(onset.millis_since_epoch(), 0) << "no onset all year";
  const auto dt = sim::to_datetime(onset);
  EXPECT_GE(dt.month, 3) << "onset in deep winter";
  EXPECT_LE(dt.month, 6) << "onset after midsummer";
}

TEST_P(ShapeSeeds, WinterConductivityFlatAndLow) {
  env::Environment environment{GetParam()};
  double max_feb = 0.0;
  for (int day = 0; day < 28; ++day) {
    const auto t = sim::at_midnight(2009, 2, 1) + sim::days(day);
    max_feb = std::max(
        max_feb, environment.melt()
                     .conductivity(t, environment.temperature(), 0.8, 13.5)
                     .value());
  }
  EXPECT_LT(max_feb, 4.0);  // Fig 6 winter band
}

TEST_P(ShapeSeeds, SummerProbeLossInPaperBand) {
  env::Environment environment{GetParam()};
  // Walk to late July.
  (void)environment.melt().water_index(sim::at_midnight(2009, 2, 1),
                                       environment.temperature());
  const double loss = environment.melt().probe_link_loss(
      sim::at_midnight(2009, 7, 25), environment.temperature());
  EXPECT_GT(loss, 0.08);
  EXPECT_LE(loss, 0.14);  // §V's ~13 %
}

TEST_P(ShapeSeeds, ClearSkySolarPeaksAtNoon) {
  env::EnvironmentConfig config;
  config.solar.cloud_stddev = 0.0;
  env::Environment environment{config, GetParam()};
  const auto day = sim::at_midnight(2009, 6, 21);
  double best = -1.0;
  int best_hour = -1;
  for (int hour = 0; hour < 24; ++hour) {
    const double w =
        environment.solar().irradiance(day + sim::hours(hour)).value();
    if (w > best) {
      best = w;
      best_hour = hour;
    }
  }
  EXPECT_EQ(best_hour, 12);
}

TEST_P(ShapeSeeds, WinterSnowBuriesPanelBeforeTurbine) {
  env::Environment environment{GetParam()};
  auto& snow = environment.snow();
  auto& temperature = environment.temperature();
  sim::SimTime panel_dark{0};
  sim::SimTime turbine_dead{0};
  for (int day = 0; day < 365; ++day) {
    const auto t = sim::at_midnight(2008, 10, 1) + sim::days(day);
    (void)snow.depth(t, temperature);
    if (panel_dark.millis_since_epoch() == 0 &&
        snow.panel_occlusion(t, temperature) >= 1.0) {
      panel_dark = t;
    }
    if (turbine_dead.millis_since_epoch() == 0 &&
        snow.turbine_buried(t, temperature)) {
      turbine_dead = t;
    }
  }
  // The shallower panel goes first (§II's burial narrative).
  if (turbine_dead.millis_since_epoch() != 0) {
    ASSERT_NE(panel_dark.millis_since_epoch(), 0);
    EXPECT_LE(panel_dark, turbine_dead);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeSeeds,
                         ::testing::Values(1u, 17u, 42u, 777u, 31337u,
                                           2008u));

}  // namespace
}  // namespace gw
