// Shape-stability sweeps: the figure-level shapes the paper reports must
// hold across seeds, not just for the bench's seed. These are the
// regression guards for model recalibrations.
#include <gtest/gtest.h>

#include "env/environment.h"

namespace gw {
namespace {

class ShapeSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShapeSeeds, MeltOnsetLandsInSpring) {
  // Fig 6's defining feature: basal melt arrives at the end of winter.
  env::Environment environment{GetParam()};
  sim::SimTime onset{0};
  for (int day = 0; day < 365; ++day) {
    const auto t = sim::at_midnight(2009, 1, 1) + sim::days(day);
    const double w =
        environment.melt().water_index(t, environment.temperature());
    if (w > 0.3) {
      onset = t;
      break;
    }
  }
  ASSERT_NE(onset.millis_since_epoch(), 0) << "no onset all year";
  const auto dt = sim::to_datetime(onset);
  EXPECT_GE(dt.month, 3) << "onset in deep winter";
  EXPECT_LE(dt.month, 6) << "onset after midsummer";
}

TEST_P(ShapeSeeds, WinterConductivityFlatAndLow) {
  env::Environment environment{GetParam()};
  double max_feb = 0.0;
  for (int day = 0; day < 28; ++day) {
    const auto t = sim::at_midnight(2009, 2, 1) + sim::days(day);
    max_feb = std::max(
        max_feb, environment.melt()
                     .conductivity(t, environment.temperature(), 0.8, 13.5)
                     .value());
  }
  EXPECT_LT(max_feb, 4.0);  // Fig 6 winter band
}

TEST_P(ShapeSeeds, SummerProbeLossInPaperBand) {
  env::Environment environment{GetParam()};
  // Walk to late July.
  (void)environment.melt().water_index(sim::at_midnight(2009, 2, 1),
                                       environment.temperature());
  const double loss = environment.melt().probe_link_loss(
      sim::at_midnight(2009, 7, 25), environment.temperature());
  EXPECT_GT(loss, 0.08);
  EXPECT_LE(loss, 0.14);  // §V's ~13 %
}

TEST_P(ShapeSeeds, ClearSkySolarPeaksAtNoon) {
  env::EnvironmentConfig config;
  config.solar.cloud_stddev = 0.0;
  env::Environment environment{config, GetParam()};
  const auto day = sim::at_midnight(2009, 6, 21);
  double best = -1.0;
  int best_hour = -1;
  for (int hour = 0; hour < 24; ++hour) {
    const double w =
        environment.solar().irradiance(day + sim::hours(hour)).value();
    if (w > best) {
      best = w;
      best_hour = hour;
    }
  }
  EXPECT_EQ(best_hour, 12);
}

TEST_P(ShapeSeeds, WinterSnowBuriesPanelBeforeTurbine) {
  env::Environment environment{GetParam()};
  auto& snow = environment.snow();
  auto& temperature = environment.temperature();
  sim::SimTime panel_dark{0};
  sim::SimTime turbine_dead{0};
  for (int day = 0; day < 365; ++day) {
    const auto t = sim::at_midnight(2008, 10, 1) + sim::days(day);
    (void)snow.depth(t, temperature);
    if (panel_dark.millis_since_epoch() == 0 &&
        snow.panel_occlusion(t, temperature) >= 1.0) {
      panel_dark = t;
    }
    if (turbine_dead.millis_since_epoch() == 0 &&
        snow.turbine_buried(t, temperature)) {
      turbine_dead = t;
    }
  }
  // The shallower panel goes first (§II's burial narrative).
  if (turbine_dead.millis_since_epoch() != 0) {
    ASSERT_NE(panel_dark.millis_since_epoch(), 0);
    EXPECT_LE(panel_dark, turbine_dead);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeSeeds,
                         ::testing::Values(1u, 17u, 42u, 777u, 31337u,
                                           2008u));

}  // namespace
}  // namespace gw
