// Golden whole-world state fingerprint (docs/SNAPSHOT.md).
//
// A 20-day faulted two-station season is snapshotted and every section's
// CRC-32 — plus the whole-world fingerprint — is pinned. Any change to any
// subsystem's dynamics, rng draw order, or persist field list shows up here
// as a named section, not a blind hash mismatch. That is deliberate
// friction: a legitimate behaviour change must re-pin these constants in
// the same commit, with the diff showing exactly which subsystems moved
// (tools/gwsnap diff does the same for saved snapshot files). On mismatch
// the test prints the freshly-computed table ready to paste.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "snapshot/state_writer.h"
#include "station/fleet.h"

namespace gw::station {
namespace {

FleetConfig golden_config() {
  FleetConfig config;
  config.seed = 20080601;
  config.start = sim::DateTime{2008, 6, 1, 0, 0, 0};
  config.trace_enabled = false;
  config.fault_spec =
      "# scripted season, first 20 days (docs/FAULTS.md)\n"
      "gprs_outage      start=5d  duration=7d  severity=1.0\n"
      "dgps_no_fix      start=14d duration=2d  severity=0.9\n"
      "cf_write_fail    start=16d duration=1d  severity=0.3\n"
      "server_down      start=18d duration=12h\n";

  StationSpec base;
  base.station.name = "base";
  base.station.role = StationRole::kBaseStation;
  base.station.power.battery.capacity = util::AmpHours{6.0};
  base.station.power.battery.initial_soc = 0.6;
  base.station.power.battery.self_discharge_per_day = 0.10;
  base.station.uploads.session_timeout = sim::minutes(15);
  base.station.uploads.retry_backoff_base = sim::minutes(1);
  base.station.degrade_after_failed_days = 3;
  base.sync_group = "g1";
  base.chargers = {ChargerKind::kSolar, ChargerKind::kWind};
  base.probe_count = 3;
  config.stations.push_back(std::move(base));

  StationSpec reference;
  reference.station.name = "reference";
  reference.station.role = StationRole::kReferenceStation;
  reference.sync_group = "g1";
  reference.chargers = {ChargerKind::kSolar, ChargerKind::kMains};
  reference.probe_count = 0;
  config.stations.push_back(std::move(reference));
  return config;
}

struct GoldenSection {
  const char* name;
  std::uint32_t crc;
};

// Pinned from the first green run; re-pin (paste the printed table) when a
// deliberate behaviour change moves a subsystem.
constexpr GoldenSection kGolden[] = {
    {"meta", 0xe54be544u},
    {"kernel", 0xdb3ee77bu},
    {"env", 0x0e07ed78u},
    {"fault", 0x4ba2a70cu},
    {"server", 0xdf43bb1bu},
    {"fleet", 0x57681deeu},
    {"station/base", 0x4d0ee8e7u},
    {"probe/base/20", 0xe9c3468bu},
    {"probe/base/21", 0xc8a23578u},
    {"probe/base/22", 0x795de2afu},
    {"station/reference", 0xb604027du},
};
constexpr std::uint32_t kGoldenFingerprint = 0xd17b7787u;

TEST(GoldenStateTest, TwentyDayFaultedSeasonFingerprint) {
  Fleet fleet{golden_config()};
  fleet.simulation().run_until(fleet.simulation().now() + sim::days(20) +
                               sim::minutes(17));
  const std::vector<std::uint8_t> snapshot = fleet.save_snapshot();
  const snapshot::StateReader reader(snapshot);

  bool drifted = reader.fingerprint() != kGoldenFingerprint ||
                 reader.sections().size() != std::size(kGolden);
  ASSERT_EQ(reader.sections().size(), std::size(kGolden));
  for (std::size_t i = 0; i < std::size(kGolden); ++i) {
    const auto& section = reader.sections()[i];
    EXPECT_EQ(section.name, kGolden[i].name);
    EXPECT_EQ(section.crc, kGolden[i].crc)
        << "drifted section: " << section.name;
    drifted = drifted || section.name != kGolden[i].name ||
              section.crc != kGolden[i].crc;
  }
  EXPECT_EQ(reader.fingerprint(), kGoldenFingerprint);

  if (drifted) {
    std::printf("// freshly-computed golden table:\n");
    for (const auto& section : reader.sections()) {
      std::printf("    {\"%s\", 0x%08xu},\n", section.name.c_str(),
                  section.crc);
    }
    std::printf("constexpr std::uint32_t kGoldenFingerprint = 0x%08xu;\n",
                reader.fingerprint());
  }
}

}  // namespace
}  // namespace gw::station
