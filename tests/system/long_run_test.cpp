// System-level property tests: multi-season runs of the full deployment,
// checking the invariants that must hold no matter what the weather,
// packet loss and probe mortality draws do.
#include <gtest/gtest.h>

#include "station/deployment.h"

namespace gw::station {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, NinetyDayInvariants) {
  DeploymentConfig config;
  config.seed = GetParam();
  config.start = sim::DateTime{2008, 9, 1, 0, 0, 0};
  Deployment deployment{config};
  deployment.run_days(90.0);

  for (auto* station : {&deployment.base(), &deployment.reference()}) {
    // Physical bounds.
    EXPECT_GE(station->power().battery().soc(), 0.0);
    EXPECT_LE(station->power().battery().soc(), 1.0);
    EXPECT_GE(station->power().total_harvested().value(), 0.0);
    EXPECT_GE(station->power().total_consumed().value(), 0.0);

    // Day accounting: every day ends as a completed run, an aborted run,
    // or a silent day (state-0 stop still counts as completed; only
    // brown-out windows go missing).
    const auto& stats = station->stats();
    EXPECT_LE(stats.runs_completed + stats.runs_aborted, 91);
    EXPECT_GE(stats.runs_completed + stats.runs_aborted,
              90 - 10 * stats.brown_outs - stats.windows_missed);

    // State history is well-formed: values in range, timestamps monotone.
    sim::SimTime previous{-1};
    for (const auto& change : station->state_history()) {
      EXPECT_GE(core::to_int(change.state), 0);
      EXPECT_LE(core::to_int(change.state), 3);
      EXPECT_GE(change.at, previous);
      previous = change.at;
    }

    // RTC error stays within crystal drift unless a brown-out reset it.
    if (stats.brown_outs == 0) {
      // 8 ppm over 90 days ≈ 62 s.
      EXPECT_LE(std::abs(station->board().msp().rtc_error_ms()), 65'000);
    }
  }

  // Voltage trace physical bounds.
  EXPECT_GT(deployment.trace().min_value("base.voltage"), 8.0);
  EXPECT_LE(deployment.trace().max_value("base.voltage"), 14.5);

  // Data conservation per probe: everything sampled is delivered, pending,
  // or stranded on a dead probe — never silently lost.
  for (const auto& probe : deployment.probes()) {
    EXPECT_EQ(probe->readings_sampled(),
              probe->store().delivered_total() +
                  probe->store().pending_count());
  }

  // Server ledger consistency.
  EXPECT_GE(deployment.server().files_from("base"), 0);
  EXPECT_EQ(std::size_t(deployment.server().files_from("base") +
                        deployment.server().files_from("reference")),
            deployment.server().received().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(LongRun, FullYearBothStationsKeepWorking) {
  DeploymentConfig config;
  config.seed = 2008;
  config.start = sim::DateTime{2008, 9, 1, 0, 0, 0};
  config.trace_enabled = false;
  Deployment deployment{config};
  deployment.run_days(365.0);

  const auto& base_stats = deployment.base().stats();
  const auto& ref_stats = deployment.reference().stats();
  // A year has 365 windows; most are served (brown-outs may cost a few,
  // and recovery brings the station back per §IV).
  EXPECT_GT(base_stats.runs_completed, 300);
  EXPECT_GT(ref_stats.runs_completed, 300);
  // Data flowed all year.
  EXPECT_GT(deployment.server().bytes_from("base").mib(), 10.0);
  EXPECT_GT(deployment.server().bytes_from("reference").mib(), 10.0);
  // Probe attrition is within the survival model's plausible band
  // (paper: 4/7 at one year; Monte-Carlo spread covers 1..7).
  EXPECT_GE(deployment.probes_alive(), 1);

  // The base station fetched probe data through the year.
  EXPECT_GT(base_stats.probe_readings_delivered, 10'000u);
}

TEST(LongRun, BrownOutRecoveryLeavesConsistentState) {
  // A deliberately under-provisioned station cycles through exhaustion and
  // recovery across a winter; afterwards every invariant still holds.
  DeploymentConfig config;
  config.seed = 31;
  config.start = sim::DateTime{2008, 11, 1, 0, 0, 0};
  config.base.power.battery.capacity = util::AmpHours{6.0};  // tiny bank
  config.base.power.battery.initial_soc = 0.6;
  config.trace_enabled = false;
  Deployment deployment{config};
  deployment.run_days(180.0);

  auto& base = deployment.base();
  // It suffered, but arithmetic still holds.
  EXPECT_GE(base.power().battery().soc(), 0.0);
  EXPECT_LE(base.power().battery().soc(), 1.0);
  if (base.stats().brown_outs > 0) {
    EXPECT_GE(base.stats().cold_boots, 1);
  }
  for (const auto& probe : deployment.probes()) {
    EXPECT_EQ(probe->readings_sampled(),
              probe->store().delivered_total() +
                  probe->store().pending_count());
  }
}

TEST(LongRun, EighteenMonthsCrossingTwoWinters) {
  // The paper's own horizon: probes reporting "after 18 months under the
  // ice", base stations surviving winters with adaptation + recovery.
  DeploymentConfig config;
  config.seed = 77;
  config.start = sim::DateTime{2008, 9, 1, 0, 0, 0};
  config.trace_enabled = false;
  Deployment deployment{config};
  deployment.run_days(547.0);

  // Data kept flowing across both winters.
  EXPECT_GT(deployment.base().stats().runs_completed, 450);
  EXPECT_GT(deployment.server().bytes_from("base").mib(), 20.0);
  // Probe attrition is in the wear-out band (paper: 2/7 at 18 months; the
  // per-deployment spread is wide).
  EXPECT_LE(deployment.probes_alive(), 6);
  // Conservation still exact after 18 months of protocol traffic.
  for (const auto& probe : deployment.probes()) {
    EXPECT_EQ(probe->readings_sampled(),
              probe->store().delivered_total() +
                  probe->store().pending_count());
  }
}

TEST(LongRun, TwoIdenticalYearsAreBitIdentical) {
  auto run_year = [] {
    DeploymentConfig config;
    config.seed = 555;
    config.trace_enabled = false;
    Deployment deployment{config};
    deployment.run_days(200.0);
    return std::tuple{
        deployment.base().stats().runs_completed,
        deployment.base().stats().brown_outs,
        deployment.base().stats().probe_readings_delivered,
        deployment.server().bytes_from("base").count(),
        deployment.server().bytes_from("reference").count(),
        deployment.base().power().battery().soc(),
        deployment.probes_alive()};
  };
  EXPECT_EQ(run_year(), run_year());
}

}  // namespace
}  // namespace gw::station
