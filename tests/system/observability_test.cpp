// System-level observability: a full Deployment run must produce the core
// metric set documented in docs/OBSERVABILITY.md, and the export must be
// deterministic — two identically-seeded runs give byte-identical JSON.
#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "sim/trace_export.h"
#include "station/deployment.h"

namespace gw {
namespace {

station::DeploymentConfig short_config() {
  station::DeploymentConfig config;
  config.seed = 2008;
  config.start = sim::DateTime{2009, 9, 1, 0, 0, 0};
  // Reliable comms so the transfer-side metrics are exercised every day.
  config.base.gprs.registration_success = 1.0;
  config.base.gprs.drop_per_minute = 0.0;
  config.reference.gprs.registration_success = 1.0;
  config.reference.gprs.drop_per_minute = 0.0;
  config.base.power.battery.initial_soc = 0.95;
  config.reference.power.battery.initial_soc = 0.95;
  return config;
}

TEST(Observability, DeploymentProducesTheDocumentedCoreMetricSet) {
  station::Deployment deployment{short_config()};
  deployment.run_days(5.0);

  const auto& base = deployment.base();
  const auto& metrics = base.metrics();

  // station.*
  EXPECT_GE(metrics.counter_value("station", "wakes"), 4u);
  EXPECT_GE(metrics.counter_value("station", "runs_completed"), 1u);
  const auto* run_seconds = metrics.find_histogram("station", "run_seconds");
  ASSERT_NE(run_seconds, nullptr);
  EXPECT_EQ(run_seconds->count(),
            metrics.counter_value("station", "runs_completed") +
                metrics.counter_value("station", "runs_aborted"));
  EXPECT_GT(run_seconds->sum(), 0.0);

  // power_policy.*: every finished run lands in exactly one occupancy bin.
  std::uint64_t occupancy = 0;
  for (int state = 0; state <= 3; ++state) {
    occupancy += metrics.counter_value(
        "power_policy", "occupancy_days.state" + std::to_string(state));
  }
  EXPECT_EQ(occupancy,
            metrics.counter_value("station", "runs_completed") +
                metrics.counter_value("station", "runs_aborted"));
  EXPECT_GT(metrics.gauge_value("power_policy", "daily_average_volts"), 10.0);

  // power.*: ledgers are republished each daily run.
  EXPECT_GT(metrics.gauge_value("power", "battery_soc"), 0.0);
  EXPECT_GT(metrics.gauge_value("power", "consumed_joules.gumstix"), 0.0);
  bool harvested = false;
  for (const auto& [key, gauge] : metrics.gauges()) {
    if (key.component == "power" &&
        key.name.starts_with("harvested_joules.")) {
      harvested = true;
    }
  }
  EXPECT_TRUE(harvested);

  // watchdog.* arms once per daily run.
  EXPECT_GE(metrics.counter_value("watchdog", "arms"),
            metrics.counter_value("station", "wakes"));

  // bulk_transfer.*: the base station talks to probes every day.
  EXPECT_GE(metrics.counter_value("bulk_transfer", "sessions"), 1u);
  EXPECT_GT(metrics.counter_value("bulk_transfer", "data_frames"), 0u);
  EXPECT_EQ(metrics.counter_value("bulk_transfer", "delivered_readings"),
            base.stats().probe_readings_delivered);

  // transfer_manager.*: uploads ran.
  EXPECT_GE(metrics.counter_value("transfer_manager", "windows"), 1u);
  EXPECT_GT(metrics.counter_value("transfer_manager", "bytes_sent"), 0u);

  // The journal saw at least the initial state transition.
  EXPECT_FALSE(base.journal().empty());
  EXPECT_GE(base.journal().count(obs::EventType::kStateTransition), 1u);
  EXPECT_EQ(base.journal().dropped(), 0u);

  // The reference station is instrumented too, but never runs the probe
  // protocol (no probe branch in its Fig 4 sequence).
  const auto& ref_metrics = deployment.reference().metrics();
  EXPECT_GE(ref_metrics.counter_value("station", "wakes"), 4u);
  EXPECT_EQ(ref_metrics.counter_value("bulk_transfer", "sessions"), 0u);
}

TEST(Observability, SameSeedExportsAreByteIdentical) {
  const auto render = [] {
    station::Deployment deployment{short_config()};
    deployment.run_days(3.0);
    obs::BenchReport report;
    report.bench = "determinism_probe";
    report.meta = {{"seed", std::to_string(deployment.config().seed)}};
    report.sections = {
        {"base", &deployment.base().metrics(), &deployment.base().journal()},
        {"reference", &deployment.reference().metrics(),
         &deployment.reference().journal()}};
    report.series = sim::to_obs_series(
        deployment.trace(), std::vector<std::string>{"base.voltage"});
    return obs::to_json(report);
  };
  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);
  // And it really is the documented schema.
  EXPECT_EQ(first.find("{\"schema\":\"glacsweb.bench.v1\""), 0u);
}

}  // namespace
}  // namespace gw
