// Breadth tests: exercising public-API edges the focused suites don't —
// the seams a downstream user will hit first.
#include <gtest/gtest.h>

#include "station/deployment.h"

namespace gw {
namespace {

using namespace util::literals;

TEST(Coverage, SimulationRunForAndPending) {
  sim::Simulation simulation;
  int fired = 0;
  simulation.schedule_in(sim::minutes(10), [&] { ++fired; });
  simulation.schedule_in(sim::minutes(50), [&] { ++fired; });
  EXPECT_EQ(simulation.pending(), 2u);
  simulation.run_for(sim::minutes(30));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulation.pending(), 1u);
  EXPECT_FALSE(simulation.empty());
  simulation.run_for(sim::minutes(30));
  EXPECT_TRUE(simulation.empty());
}

TEST(Coverage, PowerSystemVariableLoadPower) {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystem power{simulation, environment,
                           power::PowerSystemConfig{}};
  const auto modem = power.add_load("modem", 1_W);
  power.set_load(modem, true);
  power.tick(sim::hours(1));
  // Transmit burst at a higher draw.
  power.set_load_power(modem, 3_W);
  power.tick(sim::hours(1));
  EXPECT_NEAR(power.consumed_by("modem").value(), (1.0 + 3.0) * 3600.0,
              1e-6);
}

TEST(Coverage, DgpsPeekMatchesFetch) {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystem power{simulation, environment,
                           power::PowerSystemConfig{}};
  hw::DgpsReceiver dgps{simulation, power, util::Rng{3}};
  dgps.power_on();
  simulation.run_until(simulation.now() + sim::seconds(308));
  dgps.power_off();
  const auto peeked = dgps.peek_oldest();
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(dgps.stored_files(), 1u);  // peek does not consume
  const auto fetched = dgps.fetch_oldest();
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().name, peeked.value().name);
  EXPECT_EQ(fetched.value().size, peeked.value().size);
  EXPECT_FALSE(dgps.peek_oldest().ok());
}

TEST(Coverage, Msp430DriftIsDeterministicPerSeed) {
  auto error_after_30_days = [](std::uint64_t seed) {
    sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
    env::Environment environment{1};
    power::PowerSystem power{simulation, environment,
                             power::PowerSystemConfig{}};
    hw::Msp430 msp{simulation, power, util::Rng{seed}};
    simulation.run_until(simulation.now() + sim::days(30));
    return msp.rtc_error_ms();
  };
  EXPECT_EQ(error_after_30_days(7), error_after_30_days(7));
  EXPECT_NE(error_after_30_days(7), error_after_30_days(8));
}

TEST(Coverage, StationAccessorsAfterRun) {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{5};
  station::SouthamptonServer server;
  station::StationConfig config;
  config.name = "reference";
  config.role = station::StationRole::kReferenceStation;
  config.gprs.registration_success = 1.0;
  config.gprs.drop_per_minute = 0.0;
  config.power.battery.initial_soc = 1.0;
  station::Station s{simulation, environment, server, util::Rng{9}, config};
  power::MainsChargerConfig mains{.season_start_month = 1,
                                  .season_end_month = 12};
  s.add_charger(std::make_unique<power::MainsCharger>(mains));
  s.start();
  simulation.run_until(simulation.now() + sim::days(2));

  // History structures are populated and consistent.
  EXPECT_FALSE(s.state_history().empty());
  ASSERT_EQ(s.daily_averages().size(), 2u);
  EXPECT_GT(s.daily_averages()[0].average.value(), 11.0);
  EXPECT_FALSE(s.last_run_steps().empty());
  EXPECT_EQ(s.last_run_steps().front(), "read_msp");
  // CF card holds the fetched dGPS files + daily sensor files.
  EXPECT_GT(s.cf().file_count(), 2u);
  EXPECT_FALSE(s.cf().metadata_corrupted());
  // Watchdog idle between windows.
  EXPECT_FALSE(s.watchdog().armed());
}

TEST(Coverage, DeploymentTraceCadenceExact) {
  station::DeploymentConfig config;
  config.seed = 5;
  station::Deployment deployment{config};
  deployment.run_days(1.0);
  const auto& series = deployment.trace().series("base.soc");
  ASSERT_GE(series.size(), 48u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_EQ((series[i].time - series[i - 1].time).millis(),
              sim::minutes(30).millis());
  }
}

TEST(Coverage, SyncServerManyStations) {
  core::SyncServer server;
  server.report_state("a", core::PowerState::kState3);
  server.report_state("b", core::PowerState::kState2);
  server.report_state("c", core::PowerState::kState1);
  EXPECT_EQ(*server.override_for_client(), core::PowerState::kState1);
  server.report_state("c", core::PowerState::kState3);
  EXPECT_EQ(*server.override_for_client(), core::PowerState::kState2);
}

TEST(Coverage, TransferManagerDropResumeAccounting) {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystem power{simulation, environment,
                           power::PowerSystemConfig{}};
  hw::GprsConfig flaky;
  flaky.registration_success = 1.0;
  flaky.drop_per_minute = 0.25;
  hw::GprsModem modem{simulation, power, util::Rng{5}, flaky};
  modem.power_on();
  proto::TransferManagerConfig manager_config;
  manager_config.chunk_resume = true;
  manager_config.max_session_retries = 50;
  proto::TransferManager manager{manager_config};
  manager.enqueue("big", 800_KiB);
  int windows = 0;
  util::Bytes total_sent{0};
  while (!manager.empty() && windows < 20) {
    const auto report = manager.run_window(modem, sim::hours(2));
    total_sent += report.bytes_sent;
    ++windows;
  }
  EXPECT_TRUE(manager.empty());
  // With resume, total payload moved is the file size (server-side dedup of
  // retried chunks is not modelled; progress is).
  EXPECT_GE(total_sent, 800_KiB);
}

}  // namespace
}  // namespace gw
