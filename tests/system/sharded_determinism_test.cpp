// Sharded-fleet determinism: the acceptance gate for the sharded kernel.
// One 8-station faulted season rendered as a full glacsweb.bench.v1 export
// — every station registry and journal, the fault instrumentation, the
// rollup, the hub ledgers, every trace series, the merged journal, and the
// event count — must be byte-identical at 1/2/8 workers and 1/2/4 shards.
// This is the end-to-end form of the three-part determinism argument in
// docs/PARALLELISM.md: if any observable depended on the partition, the
// thread schedule, or the barrier grid, these strings would differ.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "sim/trace_export.h"
#include "station/sharded_fleet.h"

namespace gw {
namespace {

constexpr int kStations = 8;
constexpr int kDays = 6;

// A compressed adversarial season (docs/FAULTS.md): the windows land
// inside the 6-day horizon so the faulted paths — retry backoff, server
// down, flaky CF writes — are exercised under the sharded drain too.
constexpr const char* kSeasonSpec =
    "gprs_outage   start=2d duration=1d  severity=1.0\n"
    "cf_write_fail start=1d duration=4d  severity=0.3\n"
    "server_down   start=3d duration=12h\n";

station::ShardedFleetConfig season_config(std::size_t shards,
                                          unsigned workers) {
  station::ShardedFleetConfig config;
  config.fleet = station::uniform_fleet_config(kStations, 20080601u);
  config.fleet.fault_spec = kSeasonSpec;
  config.fleet.trace_enabled = true;
  config.shards = shards;
  config.workers = workers;
  return config;
}

// The comparison unit: everything the season observably produced, in the
// partition-invariant orders the fleet layer promises.
std::string render_season(std::size_t shards, unsigned workers) {
  station::ShardedFleet fleet{season_config(shards, workers)};
  for (int day = 0; day < kDays; ++day) {
    fleet.run_days(1.0);
    fleet.update_rollup();  // journal flips at a fixed daily cadence
  }

  obs::MetricsRegistry hub_registry;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::string& name = fleet.station(i).name();
    hub_registry.gauge(name, "files").set(double(fleet.hub().files_from(name)));
    hub_registry.gauge(name, "bytes").set(
        double(fleet.hub().bytes_from(name).count()));
  }
  hub_registry.gauge("hub", "files_received")
      .set(double(fleet.hub().files_received()));
  hub_registry.gauge("hub", "special_results")
      .set(double(fleet.hub().special_results().size()));
  hub_registry.gauge("hub", "beacons").set(double(fleet.hub().beacons().size()));

  obs::BenchReport report;
  report.bench = "sharded_determinism_probe";
  report.meta = {{"stations", std::to_string(kStations)},
                 {"days", std::to_string(kDays)}};
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::string& name = fleet.station(i).name();
    report.sections.push_back(
        {name, &fleet.station(i).metrics(), &fleet.station(i).journal()});
    report.sections.push_back({name + "/fault",
                               &fleet.station_fault_metrics(i),
                               &fleet.station_fault_journal(i)});
  }
  report.sections.push_back(
      {"rollup", &fleet.rollup_metrics(), &fleet.rollup_journal()});
  report.sections.push_back({"hub", &hub_registry, nullptr});

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const sim::Trace& trace = fleet.station_trace(i);
    for (auto& series : sim::to_obs_series(trace, trace.series_names())) {
      report.series.push_back(std::move(series));
    }
  }
  std::sort(report.series.begin(), report.series.end(),
            [](const obs::Series& a, const obs::Series& b) {
              return a.name < b.name;
            });

  std::string out = obs::to_json(report);
  out += "\nmerged_journal:";
  for (const auto& merged : fleet.merged_journal()) {
    out += "\n" + merged.station + "," +
           std::to_string(merged.event.time_ms) + "," +
           obs::to_string(merged.event.type) + "," + merged.event.component +
           "," + std::to_string(merged.event.a) + "," +
           std::to_string(merged.event.b);
  }
  out += "\nevents_executed:" + std::to_string(fleet.events_executed());
  out += "\nwindows_run:" + std::to_string(fleet.sharded().windows_run());
  return out;
}

TEST(ShardedDeterminism, ExportIsByteIdenticalAcrossWorkerCounts) {
  const std::string reference = render_season(4, 1);
  EXPECT_EQ(reference, render_season(4, 2));
  EXPECT_EQ(reference, render_season(4, 8));
}

TEST(ShardedDeterminism, ExportIsByteIdenticalAcrossShardCounts) {
  const std::string reference = render_season(1, 1);
  EXPECT_EQ(reference, render_season(2, 2));
  EXPECT_EQ(reference, render_season(4, 2));
}

TEST(ShardedDeterminism, FaultedSeasonActuallyBit) {
  station::ShardedFleet fleet{season_config(2, 2)};
  fleet.run_days(double(kDays));
  std::size_t trips = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    trips += fleet.station_fault_journal(i).count(obs::EventType::kFaultTrip);
  }
  EXPECT_GT(trips, 0u);
  // And despite the outage week the season still reconciled: each
  // station's completed transfers equal the hub's ingested files.
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::string& name = fleet.station(i).name();
    EXPECT_EQ(fleet.station(i).metrics().counter_value("transfer_manager",
                                                       "files_completed"),
              std::uint64_t(fleet.hub().files_from(name)))
        << name;
  }
}

}  // namespace
}  // namespace gw
