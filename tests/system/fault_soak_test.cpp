// Fleet soak under a scripted adversarial season (docs/FAULTS.md): both
// stations run >120 days through a week-long GPRS outage, a server-down
// window, and a harvest blackout that flattens the under-provisioned base
// battery. The run must never wedge, every ledger must reconcile at the
// end, recovery must be bounded by the daily retry cadence, and the whole
// thing must be byte-reproducible from the seed.
#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "sim/trace_export.h"
#include "station/deployment.h"

namespace gw {
namespace {

constexpr const char* kSeasonSpec =
    "# adversarial season for the soak harness\n"
    "gprs_outage      start=20d duration=7d  severity=1.0\n"
    "dgps_no_fix      start=35d duration=3d  severity=0.9\n"
    "cf_write_fail    start=45d duration=2d  severity=0.3\n"
    "server_down      start=50d duration=36h\n"
    "harvest_blackout start=70d duration=12d severity=1.0\n";

station::DeploymentConfig soak_config() {
  station::DeploymentConfig config;
  config.seed = 20080601;
  // Summer anchor: the glacier's own winter (snow-buried turbine, polar
  // night) already zeroes harvest for real, so a season starting in autumn
  // would flatten the small test bank a second time with no recovery until
  // spring. Starting in June keeps the *scripted* blackout the only
  // exhaustion event inside the 130-day horizon.
  config.start = sim::DateTime{2008, 6, 1, 0, 0, 0};
  config.fault_spec = kSeasonSpec;
  config.trace_enabled = false;
  // Under-provisioned, leaky base bank: the 12-day harvest blackout
  // flattens it even after the policy adapts down to state 0, exercising
  // §IV's exhaustion -> recharge -> recovery path in-fleet.
  config.base.power.battery.capacity = util::AmpHours{6.0};
  config.base.power.battery.initial_soc = 0.6;
  config.base.power.battery.self_discharge_per_day = 0.10;
  // Hardened comms on the base: session timeout, backoff, degraded mode.
  config.base.uploads.session_timeout = sim::minutes(15);
  config.base.uploads.retry_backoff_base = sim::minutes(1);
  config.base.degrade_after_failed_days = 3;
  return config;
}

TEST(FaultSoak, ScriptedSeasonRunsToCompletionWithConsistentLedgers) {
  station::Deployment deployment{soak_config()};
  deployment.run_days(130.0);  // reaching here at all = no wedged run

  auto& base = deployment.base();
  auto& reference = deployment.reference();

  // Modem session ledgers: every attempted session is exactly one of
  // registration failure / hang / drop / success, outage weeks included.
  EXPECT_TRUE(base.gprs().ledger_consistent());
  EXPECT_TRUE(reference.gprs().ledger_consistent());

  // Transfer ledger reconciles against the server, per station: a file is
  // "completed" if and only if Southampton ingested it.
  for (auto* station : {&base, &reference}) {
    EXPECT_EQ(
        station->metrics().counter_value("transfer_manager",
                                         "files_completed"),
        std::uint64_t(deployment.server().files_from(station->name())));
  }
  EXPECT_EQ(std::size_t(deployment.server().files_from("base") +
                        deployment.server().files_from("reference")),
            deployment.server().received().size());

  // The scripted windows actually bit: devices recorded trips against the
  // shared oracle, and the trips surfaced in the fleet journal.
  auto& oracle = deployment.fault_oracle();
  EXPECT_GT(oracle.trips(fault::FaultKind::kGprsOutage), 0);
  EXPECT_GT(oracle.trips(fault::FaultKind::kServerDown), 0);
  EXPECT_GE(deployment.fault_journal().count(obs::EventType::kFaultTrip),
            2u);

  // The harvest blackout flattened the small base bank; §IV recovery
  // brought it back and the RTC is trusted again well before day 130.
  EXPECT_GE(base.stats().brown_outs, 1);
  EXPECT_GE(base.stats().cold_boots, 1);
  EXPECT_FALSE(base.recovery().rtc_untrusted());

  // The GPRS outage week pushed the base into log-only degraded mode; the
  // first progressed upload after the window pulled it back out.
  EXPECT_GE(base.stats().degraded_days, 1);
  EXPECT_FALSE(base.degraded());

  // Recovery is bounded by the daily retry cadence: with ~40 clean days
  // after the last window, both backlogs have drained back to steady state.
  EXPECT_LT(base.uploads().queued_files(), 30u);
  EXPECT_LT(reference.uploads().queued_files(), 30u);

  // The reference station (36 Ah bank) rode the same season out: almost
  // every day ended as a completed or aborted run, never a silent wedge.
  const auto& ref_stats = reference.stats();
  EXPECT_GE(ref_stats.runs_completed + ref_stats.runs_aborted, 100);
  EXPECT_GT(deployment.server().files_from("reference"), 100);
}

TEST(FaultSoak, SameSeedSameSeasonIsByteIdentical) {
  // The oracle never draws randomness, so a scripted season must keep the
  // export byte-reproducible — the property every bench leans on.
  const auto render = [] {
    station::Deployment deployment{soak_config()};
    deployment.run_days(60.0);  // spans the outage + dgps windows
    obs::BenchReport report;
    report.bench = "fault_soak_probe";
    report.meta = {{"seed", std::to_string(deployment.config().seed)}};
    report.sections = {
        {"base", &deployment.base().metrics(), &deployment.base().journal()},
        {"reference", &deployment.reference().metrics(),
         &deployment.reference().journal()},
        {"fault", &deployment.fault_metrics(), &deployment.fault_journal()}};
    return obs::to_json(report);
  };
  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.find("{\"schema\":\"glacsweb.bench.v1\""), 0u);
}

TEST(FaultSoak, CleanPlanChangesNothing) {
  // An attached-but-empty plan must be invisible: same seed, same results
  // as no plan at all (the oracle only perturbs draws inside windows).
  const auto fingerprint = [](const std::string& spec) {
    station::DeploymentConfig config;
    config.seed = 4242;
    config.start = sim::DateTime{2008, 9, 1, 0, 0, 0};
    config.trace_enabled = false;
    config.fault_spec = spec;
    station::Deployment deployment{config};
    deployment.run_days(30.0);
    return std::tuple{
        deployment.base().stats().runs_completed,
        deployment.base().gprs().sessions_attempted(),
        deployment.server().bytes_from("base").count(),
        deployment.server().bytes_from("reference").count(),
        deployment.base().power().battery().soc()};
  };
  EXPECT_EQ(fingerprint(""), fingerprint("# empty plan, comments only\n"));
}

}  // namespace
}  // namespace gw
