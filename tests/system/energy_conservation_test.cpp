// The conservation invariant, end to end (docs/ENERGY.md): over a full
// scripted faulted season — brown-outs, harvest blackout, degraded mode and
// all — every station's per-component, per-state microjoule ledgers sum
// *exactly* to its battery-side delivered meter, and the per-charger
// harvest ledgers sum exactly to the absorbed meter. Not within a
// tolerance: to the microjoule, because both books are fed the same
// integer quanta in the same tick.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "energy/component_model.h"
#include "power/power_system.h"
#include "station/fleet.h"

namespace gw {
namespace {

constexpr const char* kSeasonSpec =
    "# adversarial season (docs/FAULTS.md)\n"
    "gprs_outage      start=5d  duration=7d  severity=1.0\n"
    "dgps_no_fix      start=14d duration=2d  severity=0.9\n"
    "cf_write_fail    start=16d duration=1d  severity=0.3\n"
    "server_down      start=18d duration=12h\n"
    "harvest_blackout start=25d duration=8d  severity=1.0\n";

station::FleetConfig season_config() {
  station::FleetConfig config;
  config.seed = 20080601;
  config.start = sim::DateTime{2008, 6, 1, 0, 0, 0};
  config.trace_enabled = false;
  config.fault_spec = kSeasonSpec;

  station::StationSpec base;
  base.station.name = "base";
  base.station.role = station::StationRole::kBaseStation;
  // Under-provisioned and leaky so the season actually browns out — the
  // invariant must survive the brown-out edge, not just fair weather.
  base.station.power.battery.capacity = util::AmpHours{6.0};
  base.station.power.battery.initial_soc = 0.6;
  base.station.power.battery.self_discharge_per_day = 0.10;
  base.station.uploads.session_timeout = sim::minutes(15);
  base.station.uploads.retry_backoff_base = sim::minutes(1);
  base.station.degrade_after_failed_days = 3;
  base.sync_group = "g1";
  base.chargers = {station::ChargerKind::kSolar, station::ChargerKind::kWind};
  base.probe_count = 3;
  config.stations.push_back(std::move(base));

  station::StationSpec reference;
  reference.station.name = "reference";
  reference.station.role = station::StationRole::kReferenceStation;
  reference.sync_group = "g1";
  reference.chargers = {station::ChargerKind::kSolar,
                        station::ChargerKind::kMains};
  reference.probe_count = 0;
  config.stations.push_back(std::move(reference));
  return config;
}

void expect_books_balance(station::Fleet& fleet) {
  for (std::size_t i = 0; i < 2; ++i) {
    power::PowerSystem& power = fleet.station(i).power();
    // Consumption side: ledgers vs the battery-side delivered meter.
    EXPECT_EQ(power.component_microjoules(), power.delivered_microjoules())
        << fleet.station(i).config().name;
    // Harvest side: per-charger ledgers vs the absorbed meter.
    energy::MicroJoules harvested = 0;
    for (const char* charger : {"solar", "wind", "mains"}) {
      try {
        harvested += power.harvested_microjoules(charger);
      } catch (const std::out_of_range&) {
        // This station does not have that charger.
      }
    }
    EXPECT_EQ(harvested, power.absorbed_microjoules())
        << fleet.station(i).config().name;
    // The season was not a no-op: energy actually flowed on both sides.
    EXPECT_GT(power.delivered_microjoules(), 0);
    EXPECT_GT(power.absorbed_microjoules(), 0);
  }
}

TEST(EnergyConservation, ExactOverFullFaultedSeason) {
  station::Fleet fleet{season_config()};
  fleet.run_days(40.0);
  // The scripted season must have exercised the hard path.
  EXPECT_GT(fleet.station(0).stats().brown_outs, 0);
  expect_books_balance(fleet);
}

TEST(EnergyConservation, SurvivesSnapshotRoundTripMidSeason) {
  station::Fleet fleet{season_config()};
  fleet.run_days(20.0);
  fleet.simulation().run_until(fleet.simulation().now() + sim::minutes(17));
  const std::vector<std::uint8_t> snapshot = fleet.save_snapshot();

  auto restored = std::make_unique<station::Fleet>(season_config());
  restored->restore_snapshot(snapshot);
  expect_books_balance(*restored);

  // Both worlds carry the season to the same instant; the restored one
  // must keep the exact same books as the one that never left memory.
  const sim::SimTime season_end =
      sim::to_time(fleet.config().start) + sim::days(40.0);
  fleet.simulation().run_until(season_end);
  restored->simulation().run_until(season_end);
  expect_books_balance(fleet);
  expect_books_balance(*restored);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(fleet.station(i).power().delivered_microjoules(),
              restored->station(i).power().delivered_microjoules());
    EXPECT_EQ(fleet.station(i).power().absorbed_microjoules(),
              restored->station(i).power().absorbed_microjoules());
  }
}

}  // namespace
}  // namespace gw
