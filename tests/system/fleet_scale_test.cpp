// Fleet-scale determinism: the acceptance gate for the fleet refactor. A
// sweep of fleet seasons (2 / 8 / 64 stations) dispatched through the
// MonteCarloRunner must render byte-identical exports at 1, 2, and 8
// threads — the same guarantee the runner determinism tests pin for
// synthetic trials, proven here against full Fleet worlds and the rollup
// gauges bench_fleet_scale exports.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "runner/monte_carlo_runner.h"
#include "station/fleet.h"

namespace gw {
namespace {

constexpr int kDays = 5;
const std::vector<int> kSizes{2, 8, 64};

struct SeasonSummary {
  int stations = 0;
  int convergence_lag_days = -1;  // first day every group was converged
  int diverged_group_days = 0;    // sum over days of non-converged groups
  std::uint64_t events = 0;
  double yield_bytes = 0.0;
  double stations_up = 0.0;
  double groups_total = 0.0;
  double groups_converged = 0.0;
  double probes_alive = 0.0;
};

// One fleet season, built from nothing but its size (the runner's usage
// contract: all state derives from the trial input).
SeasonSummary run_season(int stations) {
  station::Fleet fleet{
      station::uniform_fleet_config(stations, 5150u + std::uint64_t(stations))};
  SeasonSummary summary;
  summary.stations = stations;
  for (int day = 1; day <= kDays; ++day) {
    fleet.run_days(1.0);
    auto& rollup = fleet.update_rollup();
    const double total = rollup.gauge_value("fleet", "groups_total");
    const double converged = rollup.gauge_value("fleet", "groups_converged");
    if (summary.convergence_lag_days < 0 && converged == total) {
      summary.convergence_lag_days = day;
    }
    summary.diverged_group_days += int(total - converged);
  }
  summary.events = fleet.simulation().events_executed();
  auto& rollup = fleet.rollup_metrics();
  summary.yield_bytes = rollup.gauge_value("fleet", "yield_bytes");
  summary.stations_up = rollup.gauge_value("fleet", "stations_up");
  summary.groups_total = rollup.gauge_value("fleet", "groups_total");
  summary.groups_converged = rollup.gauge_value("fleet", "groups_converged");
  summary.probes_alive = rollup.gauge_value("fleet", "probes_alive");
  return summary;
}

// Renders the whole sweep as one glacsweb.bench.v1 string — the comparison
// unit for the thread-count gate.
std::string render_sweep(unsigned threads) {
  runner::MonteCarloRunner pool{threads};
  const auto results =
      pool.run(kSizes.size(),
               [](std::size_t trial) { return run_season(kSizes[trial]); });
  obs::MetricsRegistry registry;
  for (const auto& summary : results) {
    char component[8];
    std::snprintf(component, sizeof component, "n%03d", summary.stations);
    auto set = [&](const char* name, double value) {
      registry.gauge(component, name).set(value);
    };
    set("convergence_lag_days", double(summary.convergence_lag_days));
    set("diverged_group_days", double(summary.diverged_group_days));
    set("sim_events", double(summary.events));
    set("yield_bytes", summary.yield_bytes);
    set("stations_up", summary.stations_up);
    set("groups_converged", summary.groups_converged);
    set("probes_alive", summary.probes_alive);
  }
  obs::BenchReport report;
  report.bench = "fleet_scale_probe";
  report.meta = {{"days", std::to_string(kDays)}, {"sizes", "2,8,64"}};
  report.sections = {{"sweep", &registry, nullptr}};
  return obs::to_json(report);
}

TEST(FleetScale, ExportsAreByteIdenticalAcrossThreadCounts) {
  const std::string serial = render_sweep(1);
  EXPECT_EQ(serial, render_sweep(2));
  EXPECT_EQ(serial, render_sweep(8));
  EXPECT_EQ(serial.find("{\"schema\":\"glacsweb.bench.v1\""), 0u);
}

TEST(FleetScale, SixtyFourStationSeasonBehaves) {
  const auto summary = run_season(64);
  // Every pair starts deliberately diverged (state 3 vs 2); the §III
  // min-rule must pull all 32 groups into lockstep within the season.
  EXPECT_EQ(summary.groups_total, 32.0);
  EXPECT_EQ(summary.groups_converged, 32.0);
  EXPECT_GE(summary.convergence_lag_days, 1);
  EXPECT_LE(summary.convergence_lag_days, kDays);
  EXPECT_EQ(summary.stations_up, 64.0);
  EXPECT_EQ(summary.probes_alive, 64.0);  // 32 base-role stations x 2
  EXPECT_GT(summary.yield_bytes, 0.0);
}

}  // namespace
}  // namespace gw
