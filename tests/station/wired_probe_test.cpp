#include "station/wired_probe.h"

#include <gtest/gtest.h>

namespace gw::station {
namespace {

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2008, 9, 1)};
  env::Environment environment{7};

  WiredProbe make(double mtbf_days = 300.0, std::uint64_t seed = 5) {
    WiredProbeConfig config;
    config.probe_id = 10;
    config.cable_mtbf_days = mtbf_days;
    return WiredProbe{simulation, environment, util::Rng{seed}, config};
  }
};

TEST(WiredProbe, SamplesAndDrainsLosslessly) {
  Fixture f;
  auto probe = f.make(1e6);  // cable effectively immortal
  f.simulation.run_until(f.simulation.now() + sim::days(1));
  EXPECT_EQ(probe.pending_count(), 24u);
  const auto readings = probe.drain();
  EXPECT_EQ(readings.size(), 24u);
  EXPECT_EQ(probe.pending_count(), 0u);
  EXPECT_EQ(probe.delivered_total(), 24u);
  // No losses, ever: every sampled reading is delivered or pending.
  EXPECT_EQ(probe.readings_sampled(),
            probe.delivered_total() + probe.pending_count());
}

TEST(WiredProbe, CableFailureStrandsData) {
  Fixture f;
  auto probe = f.make(10.0, /*seed=*/3);  // dies fast
  f.simulation.run_until(f.simulation.now() + sim::days(120));
  EXPECT_FALSE(probe.cable_ok());
  EXPECT_EQ(probe.drain().size(), 0u);  // nothing comes over a dead cable
  EXPECT_GT(probe.stranded(), 0u);
}

TEST(WiredProbe, ProbeKeepsSamplingAfterCableDeath) {
  Fixture f;
  auto probe = f.make(5.0, /*seed=*/3);
  f.simulation.run_until(f.simulation.now() + sim::days(30));
  ASSERT_FALSE(probe.cable_ok());
  const auto count = probe.pending_count();
  f.simulation.run_until(f.simulation.now() + sim::days(10));
  // The electronics live on; only the link is gone (§V: the data was later
  // recovered in bulk when a path existed again).
  EXPECT_GT(probe.pending_count(), count);
}

TEST(WiredProbe, MtbfRoughlyHonoured) {
  int dead_within_season = 0;
  constexpr int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    sim::Simulation simulation{sim::at_midnight(2008, 9, 1)};
    env::Environment environment{7};
    WiredProbeConfig config;
    config.cable_mtbf_days = 300.0;
    config.sample_interval = sim::days(3650);
    WiredProbe probe{simulation, environment,
                     util::Rng{std::uint64_t(trial) + 11}, config};
    simulation.run_until(simulation.now() + sim::days(300));
    if (!probe.cable_ok()) ++dead_within_season;
  }
  // Exponential: P(fail within MTBF) = 1 - 1/e ≈ 0.632.
  EXPECT_NEAR(dead_within_season / double(kTrials), 0.632, 0.08);
}

}  // namespace
}  // namespace gw::station
