#include "station/station.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace gw::station {
namespace {

using namespace util::literals;

// A harness giving tests full control: reliable GPRS by default (the
// stochastic failure paths have their own tests), mains power on demand.
struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{5};
  SouthamptonServer server;
  std::unique_ptr<Station> station;

  StationConfig reference_config() {
    StationConfig config;
    config.name = "reference";
    config.role = StationRole::kReferenceStation;
    config.gprs.registration_success = 1.0;
    config.gprs.drop_per_minute = 0.0;
    return config;
  }

  StationConfig base_config() {
    StationConfig config = reference_config();
    config.name = "base";
    config.role = StationRole::kBaseStation;
    return config;
  }

  Station& make(StationConfig config, bool with_mains = true) {
    station = std::make_unique<Station>(simulation, environment, server,
                                        util::Rng{99}, std::move(config));
    if (with_mains) {
      power::MainsChargerConfig mains;
      mains.season_start_month = 1;  // always-on bench supply
      mains.season_end_month = 12;
      station->add_charger(std::make_unique<power::MainsCharger>(mains));
    }
    station->start();
    return *station;
  }

  void run_days(double days) {
    simulation.run_until(simulation.now() + sim::days(days));
  }
};

TEST(StationDaily, RunsOncePerDayAndReportsToServer) {
  Fixture f;
  auto& station = f.make(f.reference_config());
  f.run_days(3.0);
  EXPECT_EQ(station.stats().runs_completed, 3);
  EXPECT_EQ(station.stats().runs_aborted, 0);
  // Each run uploads at least the sensor package and the log.
  EXPECT_GE(f.server.files_from("reference"), 4);
  EXPECT_TRUE(f.server.sync().reported_state("reference").has_value());
}

TEST(StationDaily, HealthyBatteryReachesStateThree) {
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 1.0;
  auto& station = f.make(config);
  f.run_days(2.0);
  // Mains-backed full battery averages well above 12.5 V.
  EXPECT_EQ(station.current_state(), core::PowerState::kState3);
  ASSERT_FALSE(station.daily_averages().empty());
  EXPECT_GT(station.daily_averages().back().average.value(), 12.5);
}

TEST(StationDaily, LowBatteryDropsToLowState) {
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 0.10;  // below the OCV knee
  auto& station = f.make(config, /*with_mains=*/false);
  f.run_days(2.0);
  EXPECT_LE(core::to_int(station.current_state()), 1);
}

TEST(StationDaily, StateZeroGateStopsCommunications) {
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 0.06;  // deep in the collapsed tail
  config.initial_state = core::PowerState::kState0;
  auto& station = f.make(config, /*with_mains=*/false);
  f.run_days(2.0);
  // Fig 4: state 0 -> Stop. No GPRS sessions at all.
  EXPECT_EQ(station.gprs().sessions_attempted(), 0);
  EXPECT_EQ(f.server.files_from("reference"), 0);
  EXPECT_GT(station.stats().state0_days, 0);
}

TEST(StationDaily, GpsProgramFollowsState) {
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 1.0;
  config.initial_state = core::PowerState::kState3;
  auto& station = f.make(config);
  f.run_days(2.0);
  // State 3: ~12 scheduled readings/day (rescheduling at the window drops
  // the odd slot) plus the fetch-time bonus readings (powering the receiver
  // for the serial fetch auto-starts one, §II). Readings after the last
  // noon window are still on the receiver.
  EXPECT_GE(station.dgps().readings_taken(), 21);
  EXPECT_LE(station.dgps().readings_taken(), 28);
  EXPECT_GE(station.stats().gps_files_fetched, 14);
}

TEST(StationDaily, StateOneSkipsGps) {
  Fixture f;
  StationConfig config = f.reference_config();
  config.initial_state = core::PowerState::kState1;
  config.power.battery.initial_soc = 0.30;  // ~12.05 V rest: state 2 band
  auto& station = f.make(config, /*with_mains=*/false);
  f.run_days(1.0);
  // Initial state 1 scheduled no readings on day 0.
  EXPECT_EQ(station.dgps().readings_taken(), 0);
}

TEST(StationDaily, ServerOverrideHoldsStationDown) {
  // Fig 5's annotation: voltage allowed state 3, but the override held 2.
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 1.0;
  f.server.sync().set_manual_override(core::PowerState::kState2);
  auto& station = f.make(config);
  f.run_days(3.0);
  EXPECT_EQ(station.current_state(), core::PowerState::kState2);
  // Released: climbs back to 3 on the next daily run.
  f.server.sync().set_manual_override(std::nullopt);
  // The other ledger entry (its own report) must not hold it down.
  f.run_days(2.0);
  EXPECT_EQ(station.current_state(), core::PowerState::kState3);
}

TEST(StationDaily, OverrideCannotForceStateZero) {
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 1.0;
  f.server.sync().set_manual_override(core::PowerState::kState0);
  auto& station = f.make(config);
  f.run_days(2.0);
  EXPECT_EQ(station.current_state(), core::PowerState::kState1);
  EXPECT_GT(station.gprs().sessions_attempted(), 0);  // still talking
}

TEST(StationDaily, BaseStationFetchesProbeData) {
  Fixture f;
  StationConfig config = f.base_config();
  auto& station = f.make(config);
  ProbeNodeConfig probe_config;
  probe_config.probe_id = 21;
  probe_config.weibull_scale_days = 5000.0;  // immortal for the test
  ProbeNode probe{f.simulation, f.environment, util::Rng{21}, probe_config};
  station.add_probe(probe);
  f.run_days(2.0);
  EXPECT_GT(station.stats().probe_readings_delivered, 30u);
  // Drained at each noon window; only samples taken since then pend.
  EXPECT_LT(probe.store().pending_count(), 14u);
}

TEST(StationDaily, WatchdogKillsHungTransfer) {
  // §VI's motivating scenario: an SCP transfer hangs; only the 2-hour
  // watchdog stops the station from running its battery flat.
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 1.0;
  config.gprs.hang_per_session = 1.0;  // every session wedges
  auto& station = f.make(config);
  f.run_days(1.0);
  EXPECT_EQ(station.stats().runs_aborted, 1);
  EXPECT_EQ(station.watchdog().expiry_count(), 1);
  EXPECT_GE(station.gprs().hangs(), 1);
  // Gumstix was powered off by the abort path, not left running.
  EXPECT_FALSE(station.board().gumstix().running());
  // Uptime this window is the watchdog limit plus boot, not 24 h.
  EXPECT_LT(station.board().gumstix().uptime().to_hours(), 2.2);
}

TEST(StationDaily, OversizedBacklogSelfLimitsToWindow) {
  // A months-long dGPS backlog: far more than fits one window (§VI). The
  // upload manager stops at the window edge, so the run completes and the
  // backlog drains file by file across days.
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 1.0;
  auto& station = f.make(config);
  for (int i = 0; i < 600; ++i) {
    station.uploads().enqueue("backlog_" + std::to_string(i), 165_KiB);
  }
  f.run_days(1.0);
  EXPECT_EQ(station.stats().runs_aborted, 0);
  EXPECT_GT(f.server.files_from("reference"), 5);
  EXPECT_LT(f.server.files_from("reference"), 100);
  EXPECT_GT(station.uploads().queued_files(), 500u);
}

TEST(StationDaily, BacklogDrainsOverDays) {
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 1.0;
  auto& station = f.make(config);
  for (int i = 0; i < 50; ++i) {
    station.uploads().enqueue("backlog_" + std::to_string(i), 165_KiB);
  }
  f.run_days(4.0);
  // ~22 x 165 KiB files fit one 2 h GPRS window; 50 clear in 3 days.
  EXPECT_TRUE(std::none_of(
      station.uploads().queue().begin(), station.uploads().queue().end(),
      [](const auto& file) {
        return file.name.rfind("backlog_", 0) == 0;
      }));
}

TEST(StationDaily, SpecialExecutesWithDayLatency) {
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 1.0;
  auto& station = f.make(config);
  f.server.queue_special("reference", {.id = "df", .script = "df -h"});
  f.run_days(1.5);
  EXPECT_EQ(station.stats().specials_executed, 1);
  ASSERT_EQ(f.server.special_results().size(), 1u);
  const auto& result = f.server.special_results()[0];
  // §VI: deployed ordering -> results ride the *next* day's upload.
  EXPECT_NEAR((result.results_visible_at - result.executed_at).to_hours(),
              24.0, 0.1);
}

TEST(StationDaily, SpecialBeforeUploadCutsLatency) {
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 1.0;
  config.execute_special_before_upload = true;  // §VI suggested fix
  auto& station = f.make(config);
  f.server.queue_special("reference", {.id = "df", .script = "df -h"});
  f.run_days(1.5);
  EXPECT_EQ(station.stats().specials_executed, 1);
  ASSERT_EQ(f.server.special_results().size(), 1u);
  const auto& result = f.server.special_results()[0];
  EXPECT_LT((result.results_visible_at - result.executed_at).to_hours(), 1.0);
}

TEST(StationDaily, UpdatePipelineInstallsAndBeacons) {
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 1.0;
  auto& station = f.make(config);
  core::UpdatePackage package;
  package.name = "basestation.py";
  package.payload = std::string(4000, 'p');
  package.expected_md5 = util::Md5::hex_digest(package.payload);
  f.server.queue_update("reference", package);
  f.run_days(3.0);  // retries cover the 3% corruption draw
  EXPECT_TRUE(station.updates().has("basestation.py"));
  ASSERT_GE(f.server.beacons().size(), 1u);
  EXPECT_TRUE(f.server.beacons().back().beacon.verified);
}

TEST(StationDaily, RemoteConfigChangesProbeStrategy) {
  // §V: "Small adjustments could be made to the base station behaviour in
  // order to try different strategies for retrieving data."
  Fixture f;
  StationConfig config = f.base_config();
  config.power.battery.initial_soc = 1.0;
  auto& station = f.make(config);
  core::ConfigUpdate update;
  update.version = 1;
  update.entries["probe.max_rounds"] = "9";
  update.entries["probe.rerequest_all_ratio"] = "0.25";
  update.entries["probe.individual_limit"] = "150";
  update.seal();
  f.server.queue_config_update("base", update);
  f.run_days(1.5);
  EXPECT_EQ(station.remote_config().version(), 1u);
  EXPECT_EQ(station.remote_config().get_int("probe.max_rounds", 0), 9);
  EXPECT_EQ(station.remote_config().applied(), 1);
}

TEST(StationDaily, CorruptRemoteConfigRefusedOldStays) {
  Fixture f;
  StationConfig config = f.base_config();
  config.power.battery.initial_soc = 1.0;
  auto& station = f.make(config);
  core::ConfigUpdate good;
  good.version = 1;
  good.entries["probe.max_rounds"] = "5";
  good.seal();
  f.server.queue_config_update("base", good);
  f.run_days(1.5);
  ASSERT_EQ(station.remote_config().version(), 1u);

  core::ConfigUpdate bad;
  bad.version = 2;
  bad.entries["probe.max_rounds"] = "1";
  bad.seal();
  bad.entries["probe.max_rounds"] = "99";  // corrupted in transit
  f.server.queue_config_update("base", bad);
  f.run_days(1.0);
  EXPECT_EQ(station.remote_config().version(), 1u);  // old config live
  EXPECT_EQ(station.remote_config().get_int("probe.max_rounds", 0), 5);
  EXPECT_GE(station.remote_config().rejected(), 1);
}

TEST(StationRecovery, BrownOutThenColdBootRestoresOperation) {
  Fixture f;
  StationConfig config = f.reference_config();
  config.power.battery.initial_soc = 0.04;
  config.power.battery.self_discharge_per_day = 0.05;  // hasten the death
  auto& station = f.make(config, /*with_mains=*/false);
  // Radio left on drains the bank to zero within hours.
  station.gprs().power_on();
  f.run_days(3.0);
  EXPECT_GE(station.stats().brown_outs, 1);
  EXPECT_TRUE(station.power().browned_out());
  // RTC is at the epoch and no wake schedule exists: windows pass silently.
  EXPECT_LT(station.board().msp().rtc_now(), sim::at_midnight(1971, 1, 1));

  // Charge returns (field-season mains hookup).
  power::MainsChargerConfig mains;
  mains.season_start_month = 1;
  mains.season_end_month = 12;
  station.add_charger(std::make_unique<power::MainsCharger>(mains));
  f.run_days(4.0);
  EXPECT_GE(station.stats().cold_boots, 1);
  EXPECT_FALSE(station.power().browned_out());
  // §IV: clock resynced via GPS, restarted in state 0, runs resumed.
  EXPECT_GE(station.recovery().gps_resyncs() +
                station.recovery().ntp_resyncs(), 1);
  EXPECT_LT(std::abs(station.board().msp().rtc_error_ms()), 120'000);
  EXPECT_GT(station.stats().runs_completed, 0);
}

TEST(StationDaily, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Fixture f;
    StationConfig config = f.reference_config();
    config.power.battery.initial_soc = 0.9;
    auto& station = f.make(config);
    f.run_days(5.0);
    return std::tuple{station.stats().runs_completed,
                      station.gprs().bytes_sent().count(),
                      station.power().battery().soc()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace gw::station
