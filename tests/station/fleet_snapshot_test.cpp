// Whole-world checkpoint / fork tests (docs/SNAPSHOT.md).
//
// The contract under test: a fleet restored from a mid-season snapshot and
// run to the end of the season is indistinguishable — state for state —
// from the same world replayed cold from day 0. The comparison is the
// strongest one available: snapshot both end states and require every
// section CRC to match (the kernel section alone is exempt, because the
// cold replay's events_executed counts rebuild-dropped no-op pops the fork
// never sees). Mismatched-config and damaged-byte restores must refuse with
// typed errors before touching any state.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "snapshot/error.h"
#include "snapshot/state_writer.h"
#include "station/fleet.h"

namespace gw::station {
namespace {

FleetConfig small_faulted_config(std::uint64_t seed = 20080601) {
  FleetConfig config;
  config.seed = seed;
  config.start = sim::DateTime{2008, 6, 1, 0, 0, 0};
  // Trace on: its 30-minute sampler is a fleet-owned pending event the
  // restore path must rebuild.
  config.trace_enabled = true;
  config.fault_spec =
      "gprs_outage      start=3d duration=2d severity=1.0\n"
      "harvest_blackout start=8d duration=3d severity=1.0\n";

  StationSpec base;
  base.station.name = "base";
  base.station.role = StationRole::kBaseStation;
  base.station.power.battery.capacity = util::AmpHours{6.0};
  base.station.power.battery.initial_soc = 0.6;
  base.sync_group = "g1";
  base.chargers = {ChargerKind::kSolar, ChargerKind::kWind};
  base.probe_count = 2;
  config.stations.push_back(std::move(base));

  StationSpec reference;
  reference.station.name = "reference";
  reference.station.role = StationRole::kReferenceStation;
  reference.sync_group = "g1";
  reference.chargers = {ChargerKind::kSolar, ChargerKind::kMains};
  reference.probe_count = 0;
  config.stations.push_back(std::move(reference));
  return config;
}

// 17 minutes past a day boundary: off every wake window, sample slot, and
// fault edge, so the world is quiescent and the save is accepted.
sim::Duration checkpoint_offset() {
  return sim::days(6) + sim::minutes(17);
}

sim::SimTime season_end(const Fleet& fleet) {
  return sim::to_time(fleet.config().start) + sim::days(12) +
         sim::minutes(17);
}

TEST(FleetSnapshotTest, ForkResumedSeasonMatchesColdReplay) {
  Fleet cold{small_faulted_config()};
  cold.simulation().run_until(cold.simulation().now() + checkpoint_offset());
  const std::vector<std::uint8_t> snapshot = cold.save_snapshot();
  cold.simulation().run_until(season_end(cold));

  Fleet forked{small_faulted_config()};
  forked.restore_snapshot(snapshot);
  EXPECT_EQ(forked.simulation().now().millis_since_epoch(),
            (sim::to_time(forked.config().start) + checkpoint_offset())
                .millis_since_epoch());
  forked.simulation().run_until(season_end(forked));

  // Section-for-section byte agreement of the two end states.
  const auto cold_end = cold.save_snapshot();
  const auto fork_end = forked.save_snapshot();
  const snapshot::StateReader cold_reader(cold_end);
  const snapshot::StateReader fork_reader(fork_end);
  ASSERT_EQ(cold_reader.sections().size(), fork_reader.sections().size());
  for (std::size_t i = 0; i < cold_reader.sections().size(); ++i) {
    const auto& a = cold_reader.sections()[i];
    const auto& b = fork_reader.sections()[i];
    ASSERT_EQ(a.name, b.name);
    if (a.name == "kernel") continue;
    EXPECT_EQ(a.crc, b.crc) << "section drifted after fork: " << a.name;
  }

  // And the human-readable outcomes agree too.
  EXPECT_EQ(cold.station(0).stats().runs_completed,
            forked.station(0).stats().runs_completed);
  EXPECT_EQ(cold.server().files_from("base"),
            forked.server().files_from("base"));
  EXPECT_EQ(cold.probes_alive(), forked.probes_alive());
}

TEST(FleetSnapshotTest, SaveIsDeterministic) {
  Fleet first{small_faulted_config()};
  first.simulation().run_until(first.simulation().now() +
                               checkpoint_offset());
  Fleet second{small_faulted_config()};
  second.simulation().run_until(second.simulation().now() +
                                checkpoint_offset());
  EXPECT_EQ(first.save_snapshot(), second.save_snapshot());
}

TEST(FleetSnapshotTest, RestoreRejectsMismatchedWorld) {
  Fleet source{small_faulted_config(20080601)};
  source.simulation().run_until(source.simulation().now() +
                                checkpoint_offset());
  const auto snapshot = source.save_snapshot();

  Fleet other{small_faulted_config(999)};
  try {
    other.restore_snapshot(snapshot);
    FAIL() << "restored a snapshot from a differently-seeded world";
  } catch (const snapshot::SnapshotError& error) {
    EXPECT_EQ(error.code(), snapshot::SnapshotErrc::kStateMismatch);
    EXPECT_EQ(error.section(), "meta");
  }
}

TEST(FleetSnapshotTest, CorruptOrTruncatedSnapshotRefused) {
  Fleet source{small_faulted_config()};
  source.simulation().run_until(source.simulation().now() +
                                checkpoint_offset());
  const auto snapshot = source.save_snapshot();

  auto damaged = snapshot;
  damaged[damaged.size() / 2] ^= 0x01;
  Fleet target{small_faulted_config()};
  EXPECT_THROW(target.restore_snapshot(damaged), snapshot::SnapshotError);

  const std::vector<std::uint8_t> truncated(
      snapshot.begin(), snapshot.begin() + std::ptrdiff_t(snapshot.size() / 3));
  Fleet target2{small_faulted_config()};
  EXPECT_THROW(target2.restore_snapshot(truncated), snapshot::SnapshotError);
}

}  // namespace
}  // namespace gw::station
