#include "station/fleet.h"

#include <gtest/gtest.h>

#include <string>

namespace gw::station {
namespace {

// A 4-station fleet: two dGPS pairs, base-role stations carrying probes,
// reliable comms so the structural assertions are about wiring, not luck.
FleetConfig quad_config() {
  FleetConfig config;
  config.seed = 99;
  for (int i = 0; i < 4; ++i) {
    StationSpec spec;
    spec.station.name = "s" + std::to_string(i);
    spec.station.role =
        (i % 2 == 0) ? StationRole::kBaseStation
                     : StationRole::kReferenceStation;
    spec.station.gprs.registration_success = 1.0;
    spec.station.gprs.drop_per_minute = 0.0;
    spec.station.power.battery.initial_soc = 1.0;
    spec.sync_group = "pair" + std::to_string(i / 2);
    spec.chargers = (i % 2 == 0)
                        ? std::vector<ChargerKind>{ChargerKind::kSolar,
                                                   ChargerKind::kWind}
                        : std::vector<ChargerKind>{ChargerKind::kSolar,
                                                   ChargerKind::kMains};
    spec.probe_count = (i % 2 == 0) ? 2 : 0;
    config.stations.push_back(std::move(spec));
  }
  return config;
}

TEST(FleetTest, EveryStationRunsDaily) {
  Fleet fleet{quad_config()};
  fleet.run_days(5.0);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto& stats = fleet.station(i).stats();
    EXPECT_GE(stats.runs_completed + stats.runs_aborted, 4)
        << fleet.station(i).name();
    EXPECT_GT(fleet.server().files_from(fleet.station(i).name()), 0)
        << fleet.station(i).name();
  }
}

TEST(FleetTest, SyncGroupsConvergeIndependently) {
  Fleet fleet{quad_config()};
  fleet.run_days(6.0);
  // Within a pair the §III min-rule holds; across pairs there is no link.
  EXPECT_EQ(fleet.station(0).current_state(),
            fleet.station(1).current_state());
  EXPECT_EQ(fleet.station(2).current_state(),
            fleet.station(3).current_state());
  const auto groups = fleet.group_status();
  ASSERT_EQ(groups.size(), 2u);
  for (const auto& group : groups) {
    EXPECT_EQ(group.members, 2);
    EXPECT_TRUE(group.converged) << group.name;
  }
}

TEST(FleetTest, GroupOverrideHoldsOnlyItsPair) {
  Fleet fleet{quad_config()};
  fleet.server().sync().set_group_override("pair0",
                                           core::PowerState::kState1);
  fleet.run_days(4.0);
  EXPECT_EQ(fleet.station(0).current_state(), core::PowerState::kState1);
  EXPECT_EQ(fleet.station(1).current_state(), core::PowerState::kState1);
  // pair1 climbed to what its (full, mains-backed) batteries allow.
  EXPECT_GT(core::to_int(fleet.station(2).current_state()), 1);
}

TEST(FleetTest, ProbeSeriesAreStationScoped) {
  auto config = quad_config();
  config.trace_enabled = true;
  Fleet fleet{config};
  fleet.run_days(2.0);
  for (const auto* name :
       {"s0.voltage", "s3.state", "s0/probe20.conductivity",
        "s2/probe21.conductivity"}) {
    EXPECT_TRUE(fleet.trace().has_series(name)) << name;
  }
  // The two base-role stations each carry probes 20..21 without colliding.
  EXPECT_EQ(fleet.probe_series_name("s2", 20), "s2/probe20");
  EXPECT_FALSE(fleet.trace().has_series("probe20.conductivity"));
}

TEST(FleetTest, RollupGaugesAndConvergenceJournal) {
  Fleet fleet{quad_config()};
  auto& rollup = fleet.update_rollup();
  EXPECT_EQ(rollup.gauge_value("fleet", "stations_total"), 4.0);
  EXPECT_EQ(rollup.gauge_value("fleet", "groups_total"), 2.0);
  EXPECT_EQ(rollup.gauge_value("fleet", "probes_alive"), 4.0);
  // First refresh journals the initial convergence status of each group.
  EXPECT_EQ(fleet.rollup_journal().size(), 2u);

  fleet.run_days(6.0);
  fleet.update_rollup();
  EXPECT_EQ(rollup.gauge_value("fleet", "stations_up"), 4.0);
  EXPECT_EQ(rollup.gauge_value("fleet", "groups_converged"), 2.0);
  EXPECT_GT(rollup.gauge_value("fleet", "yield_bytes"), 0.0);
  // Steady state journals nothing new: only flips are recorded.
  const std::size_t after_settle = fleet.rollup_journal().size();
  fleet.update_rollup();
  EXPECT_EQ(fleet.rollup_journal().size(), after_settle);
}

TEST(FleetTest, FindStationByName) {
  Fleet fleet{quad_config()};
  ASSERT_NE(fleet.find_station("s2"), nullptr);
  EXPECT_EQ(fleet.find_station("s2")->name(), "s2");
  EXPECT_EQ(fleet.find_station("nope"), nullptr);
}

TEST(FleetTest, ServerReceivedWindowIsWiredThrough) {
  auto config = quad_config();
  config.server_received_window = 8;
  config.trace_enabled = false;
  Fleet fleet{config};
  fleet.run_days(5.0);
  EXPECT_LE(fleet.server().received().size(), 8u);
  // Totals are exact counters, far beyond the window.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    total += std::uint64_t(
        fleet.server().files_from(fleet.station(i).name()));
  }
  EXPECT_EQ(total, fleet.server().files_received());
  EXPECT_GT(total, 8u);
}

TEST(FleetTest, DeterministicFromSeed) {
  auto fingerprint = [](std::uint64_t seed) {
    auto config = quad_config();
    config.seed = seed;
    config.trace_enabled = false;
    Fleet fleet{config};
    fleet.run_days(5.0);
    return std::tuple{fleet.station(0).stats().runs_completed,
                      fleet.server().bytes_from("s0").count(),
                      fleet.server().bytes_from("s3").count(),
                      fleet.station(2).power().battery().soc()};
  };
  EXPECT_EQ(fingerprint(7), fingerprint(7));
  EXPECT_NE(fingerprint(7), fingerprint(8));
}

}  // namespace
}  // namespace gw::station
