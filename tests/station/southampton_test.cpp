#include "station/southampton.h"

#include <gtest/gtest.h>

namespace gw::station {
namespace {

using namespace util::literals;

TEST(Southampton, DataLedger) {
  SouthamptonServer server;
  server.receive_file("base", "dgps_1", 165_KiB, sim::SimTime{1000});
  server.receive_file("base", "probes_1", 40_KiB, sim::SimTime{2000});
  server.receive_file("reference", "dgps_r", 165_KiB, sim::SimTime{3000});
  EXPECT_EQ(server.files_from("base"), 2);
  EXPECT_EQ(server.files_from("reference"), 1);
  EXPECT_EQ(server.bytes_from("base"), 205_KiB);
  EXPECT_EQ(server.bytes_from("ghost").count(), 0);
  EXPECT_EQ(server.received().size(), 3u);
}

TEST(Southampton, SpecialQueueFifoPerStation) {
  SouthamptonServer server;
  server.queue_special("base", {.id = "s1", .script = "df -h"});
  server.queue_special("base", {.id = "s2", .script = "uptime"});
  server.queue_special("reference", {.id = "r1", .script = "ls"});
  auto first = server.fetch_special("base");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, "s1");
  EXPECT_EQ(server.fetch_special("base")->id, "s2");
  EXPECT_FALSE(server.fetch_special("base").has_value());
  EXPECT_EQ(server.fetch_special("reference")->id, "r1");
}

TEST(Southampton, SpecialResultsRecorded) {
  SouthamptonServer server;
  core::SpecialExecution execution;
  execution.id = "s1";
  execution.executed_at = sim::SimTime{5000};
  execution.results_visible_at = sim::SimTime{5000} + sim::days(1);
  server.record_special_result(execution);
  ASSERT_EQ(server.special_results().size(), 1u);
  EXPECT_EQ(
      (server.special_results()[0].results_visible_at -
       server.special_results()[0].executed_at).to_hours(),
      24.0);
}

TEST(Southampton, UpdateQueueAndBeacons) {
  SouthamptonServer server;
  core::UpdatePackage package;
  package.name = "basestation.py";
  package.payload = "new code";
  package.expected_md5 = util::Md5::hex_digest("new code");
  server.queue_update("base", package);
  const auto fetched = server.fetch_update("base");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->name, "basestation.py");
  EXPECT_FALSE(server.fetch_update("base").has_value());

  core::UpdateBeacon beacon;
  beacon.name = "basestation.py";
  beacon.md5 = package.expected_md5;
  beacon.verified = true;
  server.receive_beacon("base", beacon, sim::SimTime{7777});
  ASSERT_EQ(server.beacons().size(), 1u);
  EXPECT_TRUE(server.beacons()[0].beacon.verified);
  EXPECT_EQ(server.beacons()[0].station, "base");
  EXPECT_EQ(server.beacons_from("base"), 1);
  EXPECT_EQ(server.beacons_from("ghost"), 0);
}

TEST(Southampton, QueriesForUnknownStationsNeverGrowLedgers) {
  // Regression: fetch_special/fetch_update/fetch_config_update used to
  // materialise an empty deque per unknown name via operator[], so a fleet
  // of askers made the maps grow on the *read* path.
  SouthamptonServer server;
  server.queue_special("base", {.id = "s1", .script = "df -h"});
  server.queue_update("base", core::UpdatePackage{});
  core::ConfigUpdate update;
  update.version = 1;
  update.seal();
  server.queue_config_update("base", update);
  EXPECT_EQ(server.special_queue_count(), 1u);
  EXPECT_EQ(server.update_queue_count(), 1u);
  EXPECT_EQ(server.config_update_queue_count(), 1u);

  for (int i = 0; i < 100; ++i) {
    const std::string ghost = "ghost" + std::to_string(i);
    EXPECT_FALSE(server.fetch_special(ghost).has_value());
    EXPECT_FALSE(server.fetch_update(ghost).has_value());
    EXPECT_FALSE(server.fetch_config_update(ghost).has_value());
  }
  EXPECT_EQ(server.special_queue_count(), 1u);
  EXPECT_EQ(server.update_queue_count(), 1u);
  EXPECT_EQ(server.config_update_queue_count(), 1u);
  // The queued work is still there.
  EXPECT_EQ(server.fetch_special("base")->id, "s1");
}

TEST(Southampton, DrainedQueuesReleaseTheirMapEntries) {
  // Regression: fetch_* used to leave a drained-empty deque materialised
  // in the map forever, so *_queue_count() reported phantom queues — on a
  // long-lived server every station that ever received one command counted
  // as "pending work" for the rest of the season.
  SouthamptonServer server;
  for (int i = 0; i < 20; ++i) {
    const std::string station = "s" + std::to_string(i);
    server.queue_special(station, {.id = "cmd", .script = "ls"});
    server.queue_update(station, core::UpdatePackage{});
    core::ConfigUpdate update;
    update.version = 1;
    update.seal();
    server.queue_config_update(station, update);
  }
  EXPECT_EQ(server.special_queue_count(), 20u);
  for (int i = 0; i < 20; ++i) {
    const std::string station = "s" + std::to_string(i);
    EXPECT_TRUE(server.fetch_special(station).has_value());
    EXPECT_TRUE(server.fetch_update(station).has_value());
    EXPECT_TRUE(server.fetch_config_update(station).has_value());
  }
  // Every queue drained to empty: no tombstones remain.
  EXPECT_EQ(server.special_queue_count(), 0u);
  EXPECT_EQ(server.update_queue_count(), 0u);
  EXPECT_EQ(server.config_update_queue_count(), 0u);
  // Partially drained queues still count.
  server.queue_special("s0", {.id = "a", .script = "x"});
  server.queue_special("s0", {.id = "b", .script = "y"});
  EXPECT_TRUE(server.fetch_special("s0").has_value());
  EXPECT_EQ(server.special_queue_count(), 1u);
}

TEST(Southampton, BoundedQueueRejectsAndJournalsTheDrop) {
  SouthamptonServer server;
  obs::EventJournal journal;
  server.set_hooks(obs::Hooks{nullptr, &journal});
  server.set_station_queue_limit(2);
  EXPECT_TRUE(server.queue_special("base", {.id = "s1", .script = "a"}));
  EXPECT_TRUE(server.queue_special("base", {.id = "s2", .script = "b"}));
  // Third in: the per-station bound is full — explicit backpressure.
  EXPECT_FALSE(server.queue_special("base", {.id = "s3", .script = "c"},
                                    sim::SimTime{4200}));
  EXPECT_EQ(server.ingest_rejected(), 1u);
  ASSERT_EQ(journal.count(obs::EventType::kIngestRejected), 1u);
  const auto drops = journal.of_type(obs::EventType::kIngestRejected);
  EXPECT_EQ(drops[0].time_ms, 4200);
  EXPECT_DOUBLE_EQ(drops[0].a, 0.0);  // special queue
  EXPECT_DOUBLE_EQ(drops[0].b, 2.0);  // the limit that was full
  // Other stations and other kinds are unaffected.
  EXPECT_TRUE(server.queue_special("reference", {.id = "r1", .script = "d"}));
  EXPECT_TRUE(server.queue_update("base", core::UpdatePackage{}));
  // Draining one slot readmits.
  EXPECT_TRUE(server.fetch_special("base").has_value());
  EXPECT_TRUE(server.queue_special("base", {.id = "s3", .script = "c"}));
  // The accepted order survived the drop: s2 then s3.
  EXPECT_EQ(server.fetch_special("base")->id, "s2");
  EXPECT_EQ(server.fetch_special("base")->id, "s3");
}

TEST(Southampton, UnboundedQueuesNeverReject) {
  SouthamptonServer server;
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(server.queue_special("base", {.id = "x", .script = "y"}));
  }
  EXPECT_EQ(server.ingest_rejected(), 0u);
}

TEST(Southampton, IngestStripesPartitionByGroupAndRehashSafely) {
  SouthamptonServer server;
  server.sync().assign_group("base", "dgps");
  server.sync().assign_group("reference", "dgps");
  server.queue_special("base", {.id = "b1", .script = "a"});
  server.queue_special("reference", {.id = "r1", .script = "b"});
  server.queue_special("solo", {.id = "x1", .script = "c"});
  EXPECT_EQ(server.ingest_stripes(), 8u);
  // Repartitioning re-hashes every queue without losing or reordering work.
  server.set_ingest_stripes(3);
  EXPECT_EQ(server.ingest_stripes(), 3u);
  EXPECT_EQ(server.special_queue_count(), 3u);
  EXPECT_EQ(server.fetch_special("base")->id, "b1");
  EXPECT_EQ(server.fetch_special("reference")->id, "r1");
  EXPECT_EQ(server.fetch_special("solo")->id, "x1");
  EXPECT_EQ(server.special_queue_count(), 0u);
  // A zero request clamps to one stripe rather than dividing by zero.
  server.set_ingest_stripes(0);
  EXPECT_EQ(server.ingest_stripes(), 1u);
}

TEST(Southampton, CompactionFoldsReceiptsButPreservesExactTotals) {
  SouthamptonServer server;
  server.receive_file("base", "f1", 10_KiB, sim::SimTime{1000});
  server.receive_file("base", "f2", 20_KiB, sim::SimTime{2000});
  server.receive_file("reference", "g1", 5_KiB, sim::SimTime{1500});
  EXPECT_EQ(server.compact_received(), 3u);
  EXPECT_TRUE(server.received().empty());
  EXPECT_EQ(server.compactions(), 1u);

  // The summaries account for exactly what was folded...
  const auto& summaries = server.receipt_summaries();
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries.at("base").files, 2);
  EXPECT_EQ(summaries.at("base").bytes, 30_KiB);
  EXPECT_EQ(summaries.at("base").first_at, sim::SimTime{1000});
  EXPECT_EQ(summaries.at("base").last_at, sim::SimTime{2000});
  EXPECT_EQ(summaries.at("reference").files, 1);
  // ...and the lifetime counters did not move.
  EXPECT_EQ(server.files_received(), 3u);
  EXPECT_EQ(server.files_from("base"), 2);
  EXPECT_EQ(server.bytes_from("base"), 30_KiB);

  // A second round accumulates into the same summaries.
  server.receive_file("base", "f3", 1_KiB, sim::SimTime{9000});
  EXPECT_EQ(server.compact_received(), 1u);
  EXPECT_EQ(summaries.at("base").files, 3);
  EXPECT_EQ(summaries.at("base").bytes, 31_KiB);
  EXPECT_EQ(summaries.at("base").last_at, sim::SimTime{9000});
  // Summaries + raw deque always equal the counters: here the deque is
  // empty, so the summaries alone carry the season.
  EXPECT_EQ(std::uint64_t(summaries.at("base").files +
                          summaries.at("reference").files),
            server.files_received());
  // Compacting nothing is a no-op, not a round.
  EXPECT_EQ(server.compact_received(), 0u);
  EXPECT_EQ(server.compactions(), 2u);
}

TEST(Southampton, ReceivedWindowCapsLedgerButTotalsStayExact) {
  SouthamptonServer server;
  server.set_received_window(4);
  for (int i = 0; i < 10; ++i) {
    const std::string station = (i % 2 == 0) ? "base" : "reference";
    server.receive_file(station, "f" + std::to_string(i), 10_KiB,
                        sim::SimTime{std::int64_t(i) * 1000});
  }
  // Only the newest 4 receipts are retained...
  ASSERT_EQ(server.received().size(), 4u);
  EXPECT_EQ(server.received().front().name, "f6");
  EXPECT_EQ(server.received().back().name, "f9");
  // ...but the per-station counters saw every file.
  EXPECT_EQ(server.files_from("base"), 5);
  EXPECT_EQ(server.files_from("reference"), 5);
  EXPECT_EQ(server.files_received(), 10u);
  EXPECT_EQ(server.bytes_from("base"), 50_KiB);

  // Shrinking the window trims immediately; totals are untouched.
  server.set_received_window(2);
  EXPECT_EQ(server.received().size(), 2u);
  EXPECT_EQ(server.files_received(), 10u);
}

TEST(Southampton, UnboundedWindowKeepsEveryReceipt) {
  SouthamptonServer server;
  for (int i = 0; i < 50; ++i) {
    server.receive_file("base", "f" + std::to_string(i), 1_KiB,
                        sim::SimTime{std::int64_t(i)});
  }
  EXPECT_EQ(server.received_window(), 0u);
  EXPECT_EQ(server.received().size(), 50u);
  EXPECT_EQ(std::uint64_t(server.files_from("base")),
            server.files_received());
}

TEST(Southampton, DrainsMoveLedgersButKeepExactTotals) {
  // The sharded fleet's barrier drain: receipts, beacons, and special
  // results move out exactly once; the per-station counters stay exact so
  // replica totals remain comparable with the hub's.
  SouthamptonServer server;
  server.receive_file("base", "a.log", 2_KiB, sim::SimTime{10});
  server.receive_file("base", "b.log", 3_KiB, sim::SimTime{20});
  server.receive_beacon("base", {"gw.tar.gz", "abc123", true},
                        sim::SimTime{30});
  server.record_special_result({"sp1", sim::SimTime{40}, sim::SimTime{50}});

  const auto received = server.drain_received();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].name, "a.log");
  EXPECT_EQ(received[1].received_at, sim::SimTime{20});
  EXPECT_TRUE(server.received().empty());
  EXPECT_TRUE(server.drain_received().empty());
  EXPECT_EQ(server.files_from("base"), 2);
  EXPECT_EQ(server.bytes_from("base"), 5_KiB);
  EXPECT_EQ(server.files_received(), 2u);

  const auto beacons = server.drain_beacons();
  ASSERT_EQ(beacons.size(), 1u);
  EXPECT_EQ(beacons[0].beacon.name, "gw.tar.gz");
  EXPECT_TRUE(server.beacons().empty());

  const auto specials = server.drain_special_results();
  ASSERT_EQ(specials.size(), 1u);
  EXPECT_EQ(specials[0].id, "sp1");
  EXPECT_TRUE(server.special_results().empty());
}

TEST(Southampton, SyncLedgerAccessible) {
  SouthamptonServer server;
  server.sync().report_state("base", core::PowerState::kState3);
  server.sync().report_state("reference", core::PowerState::kState1);
  EXPECT_EQ(*server.sync().override_for_client(), core::PowerState::kState1);
}

}  // namespace
}  // namespace gw::station
