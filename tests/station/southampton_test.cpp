#include "station/southampton.h"

#include <gtest/gtest.h>

namespace gw::station {
namespace {

using namespace util::literals;

TEST(Southampton, DataLedger) {
  SouthamptonServer server;
  server.receive_file("base", "dgps_1", 165_KiB, sim::SimTime{1000});
  server.receive_file("base", "probes_1", 40_KiB, sim::SimTime{2000});
  server.receive_file("reference", "dgps_r", 165_KiB, sim::SimTime{3000});
  EXPECT_EQ(server.files_from("base"), 2);
  EXPECT_EQ(server.files_from("reference"), 1);
  EXPECT_EQ(server.bytes_from("base"), 205_KiB);
  EXPECT_EQ(server.bytes_from("ghost").count(), 0);
  EXPECT_EQ(server.received().size(), 3u);
}

TEST(Southampton, SpecialQueueFifoPerStation) {
  SouthamptonServer server;
  server.queue_special("base", {.id = "s1", .script = "df -h"});
  server.queue_special("base", {.id = "s2", .script = "uptime"});
  server.queue_special("reference", {.id = "r1", .script = "ls"});
  auto first = server.fetch_special("base");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, "s1");
  EXPECT_EQ(server.fetch_special("base")->id, "s2");
  EXPECT_FALSE(server.fetch_special("base").has_value());
  EXPECT_EQ(server.fetch_special("reference")->id, "r1");
}

TEST(Southampton, SpecialResultsRecorded) {
  SouthamptonServer server;
  core::SpecialExecution execution;
  execution.id = "s1";
  execution.executed_at = sim::SimTime{5000};
  execution.results_visible_at = sim::SimTime{5000} + sim::days(1);
  server.record_special_result(execution);
  ASSERT_EQ(server.special_results().size(), 1u);
  EXPECT_EQ(
      (server.special_results()[0].results_visible_at -
       server.special_results()[0].executed_at).to_hours(),
      24.0);
}

TEST(Southampton, UpdateQueueAndBeacons) {
  SouthamptonServer server;
  core::UpdatePackage package;
  package.name = "basestation.py";
  package.payload = "new code";
  package.expected_md5 = util::Md5::hex_digest("new code");
  server.queue_update("base", package);
  const auto fetched = server.fetch_update("base");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->name, "basestation.py");
  EXPECT_FALSE(server.fetch_update("base").has_value());

  core::UpdateBeacon beacon;
  beacon.name = "basestation.py";
  beacon.md5 = package.expected_md5;
  beacon.verified = true;
  server.receive_beacon(beacon, sim::SimTime{7777});
  ASSERT_EQ(server.beacons().size(), 1u);
  EXPECT_TRUE(server.beacons()[0].beacon.verified);
}

TEST(Southampton, SyncLedgerAccessible) {
  SouthamptonServer server;
  server.sync().report_state("base", core::PowerState::kState3);
  server.sync().report_state("reference", core::PowerState::kState1);
  EXPECT_EQ(*server.sync().override_for_client(), core::PowerState::kState1);
}

}  // namespace
}  // namespace gw::station
