#include "station/probe_node.h"

#include <gtest/gtest.h>

namespace gw::station {
namespace {

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2008, 9, 1)};
  env::Environment environment{7};

  ProbeNode make_probe(int id = 21, double scale_days = 488.0) {
    ProbeNodeConfig config;
    config.probe_id = id;
    config.weibull_scale_days = scale_days;
    return ProbeNode{simulation, environment,
                     util::Rng{std::uint64_t(id) * 31}, config};
  }
};

TEST(ProbeNode, SamplesHourly) {
  Fixture f;
  auto probe = f.make_probe();
  f.simulation.run_until(f.simulation.now() + sim::days(1));
  // 24 samples/day at the default interval (if it survived day 1, which at
  // scale 488 d it almost surely did for this seed).
  ASSERT_TRUE(probe.alive());
  EXPECT_EQ(probe.store().pending_count(), 24u);
  EXPECT_EQ(probe.readings_sampled(), 24u);
}

TEST(ProbeNode, ReadingsCarrySensorSuite) {
  Fixture f;
  auto probe = f.make_probe();
  f.simulation.run_until(f.simulation.now() + sim::hours(3));
  ASSERT_GE(probe.store().pending_count(), 2u);
  const auto& reading = probe.store().pending().front();
  EXPECT_EQ(reading.probe_id, 21);
  EXPECT_GE(reading.conductivity_us, 0.0);
  EXPECT_GT(reading.pressure_kpa, 400.0);
  EXPECT_LT(reading.temperature_c, 1.0);  // basal ice is near melting point
}

TEST(ProbeNode, SequenceNumbersMonotone) {
  Fixture f;
  auto probe = f.make_probe();
  f.simulation.run_until(f.simulation.now() + sim::days(2));
  const auto& pending = probe.store().pending();
  for (std::size_t i = 1; i < pending.size(); ++i) {
    EXPECT_EQ(pending[i].seq, pending[i - 1].seq + 1);
  }
}

TEST(ProbeNode, DeadProbeStopsSampling) {
  Fixture f;
  auto probe = f.make_probe(22, /*scale_days=*/5.0);  // dies fast
  f.simulation.run_until(f.simulation.now() + sim::days(60));
  EXPECT_FALSE(probe.alive());
  const auto count = probe.store().pending_count();
  f.simulation.run_until(f.simulation.now() + sim::days(10));
  EXPECT_EQ(probe.store().pending_count(), count);  // no new samples
}

TEST(ProbeNode, SurvivalMatchesPaperAtOneYear) {
  // §V: 4/7 probes alive after one year, 2 still reporting at 18 months.
  // Weibull(2, 488 d): S(365) ≈ 0.57, S(547) ≈ 0.28.
  int alive_1y = 0;
  int alive_18m = 0;
  constexpr int kTrials = 700;
  for (int trial = 0; trial < kTrials; ++trial) {
    sim::Simulation simulation{sim::at_midnight(2008, 9, 1)};
    env::Environment environment{7};
    ProbeNodeConfig config;
    config.probe_id = trial;
    config.sample_interval = sim::days(3650);  // no samples: fast run
    ProbeNode probe{simulation, environment,
                    util::Rng{std::uint64_t(trial) + 1000}, config};
    simulation.run_until(simulation.now() + sim::days(365));
    if (probe.alive()) ++alive_1y;
    simulation.run_until(simulation.now() + sim::days(182));
    if (probe.alive()) ++alive_18m;
  }
  EXPECT_NEAR(alive_1y / double(kTrials), 4.0 / 7.0, 0.06);
  EXPECT_NEAR(alive_18m / double(kTrials), 2.0 / 7.0, 0.06);
}

TEST(ProbeNode, ConductivityRisesWithSpringMelt) {
  Fixture fixture;
  auto probe = fixture.make_probe(24, /*scale_days=*/5000.0);  // immortal
  // Run Jan 27 -> Apr 21 (the Fig 6 window) plus a tail into May.
  sim::Simulation& simulation = fixture.simulation;
  simulation.run_until(sim::at_midnight(2009, 1, 27));
  (void)probe.store().confirm_delivered({});  // no-op, keep readings
  const std::size_t start_index = probe.store().pending_count();
  simulation.run_until(sim::at_midnight(2009, 5, 20));
  const auto& pending = probe.store().pending();
  ASSERT_GT(pending.size(), start_index + 100);
  // Average the first and last 200 readings of the window.
  double early = 0.0;
  double late = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    early += pending[start_index + i].conductivity_us;
    late += pending[pending.size() - 1 - i].conductivity_us;
  }
  EXPECT_GT(late / 200.0, early / 200.0 + 2.0);  // Fig 6 melt onset
}

}  // namespace
}  // namespace gw::station
