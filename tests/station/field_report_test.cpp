#include "station/field_report.h"

#include <gtest/gtest.h>

namespace gw::station {
namespace {

TEST(FieldReport, RendersAllSections) {
  DeploymentConfig config;
  config.seed = 3;
  config.trace_enabled = false;
  Deployment deployment{config};
  deployment.run_days(10.0);

  const std::string report = FieldReport{deployment}.render();
  for (const auto* needle :
       {"GLACSWEB FIELD REPORT", "[base station]", "[reference station]",
        "[subglacial probes]", "[southampton]", "power state", "dGPS:",
        "GPRS:", "energy:", "probe 20", "probe 26", "/7 alive",
        "received"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

TEST(FieldReport, ShowsBrownOutMarker) {
  DeploymentConfig config;
  config.seed = 3;
  config.trace_enabled = false;
  config.base.power.battery.capacity = util::AmpHours{1.0};
  config.base.power.battery.initial_soc = 0.02;
  config.start = sim::DateTime{2009, 1, 1, 0, 0, 0};  // winter: no recharge
  Deployment deployment{config};
  deployment.run_days(8.0);
  if (deployment.base().power().browned_out()) {
    const std::string report = FieldReport{deployment}.render();
    EXPECT_NE(report.find("** BROWNED OUT **"), std::string::npos);
  }
}

TEST(FieldReport, CountsMatchLedgers) {
  DeploymentConfig config;
  config.seed = 4;
  config.trace_enabled = false;
  config.base.gprs.registration_success = 1.0;
  config.base.gprs.drop_per_minute = 0.0;
  Deployment deployment{config};
  deployment.run_days(5.0);
  const std::string report = FieldReport{deployment}.render();
  // The per-probe delivered counts printed must sum to the base station's
  // ledger figure.
  std::size_t delivered_sum = 0;
  for (const auto& probe : deployment.probes()) {
    delivered_sum += probe->store().delivered_total();
  }
  EXPECT_EQ(delivered_sum,
            deployment.base().stats().probe_readings_delivered);
  EXPECT_NE(report.find(std::to_string(delivered_sum)), std::string::npos);
}

}  // namespace
}  // namespace gw::station
