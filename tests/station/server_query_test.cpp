// End-to-end consumer read API: encoded request wire in, encoded response
// wire out, through SouthamptonServer::handle_query. The queries here go
// through the same Form codec a deployed client would use, so the tests
// also pin the refusal envelope (QueryError reasons) and the query
// counters.
#include <gtest/gtest.h>

#include <string>

#include "proto/messages.h"
#include "station/southampton.h"

namespace gw::station {
namespace {

using namespace util::literals;

SouthamptonServer seeded_server() {
  SouthamptonServer server;
  server.sync().assign_group("base", "dgps");
  server.sync().assign_group("reference", "dgps");
  server.receive_file("base", "dgps_1", 165_KiB, sim::SimTime{1000});
  server.receive_file("base", "probes_1", 40_KiB, sim::SimTime{2000});
  server.receive_file("reference", "dgps_r", 165_KiB, sim::SimTime{1500});
  server.receive_beacon("base", {"basestation.py", "md5", true},
                        sim::SimTime{3000});
  server.sync().report_state("base", core::PowerState::kState2,
                             sim::SimTime{4000});
  server.sync().report_state("reference", core::PowerState::kState2,
                             sim::SimTime{4100});
  return server;
}

TEST(ServerQuery, DirectoryListsEveryKnownStationSorted) {
  auto server = seeded_server();
  server.sync().report_state("weather", core::PowerState::kState3,
                             sim::SimTime{100});
  const auto wire = server.handle_query(proto::DirectoryRequest{}.encode(),
                                        sim::SimTime{5000});
  const auto response = proto::DirectoryResponse::decode(wire);
  ASSERT_TRUE(response.ok());
  const auto& stations = response.value().stations;
  ASSERT_EQ(stations.size(), 3u);
  EXPECT_EQ(stations[0], "base");
  EXPECT_EQ(stations[1], "reference");
  EXPECT_EQ(stations[2], "weather");
  EXPECT_EQ(server.queries_served(), 1u);
  EXPECT_EQ(server.queries_refused(), 0u);
}

TEST(ServerQuery, StationStatsRollUpFilesBytesAndBeacons) {
  auto server = seeded_server();
  proto::StationStatsRequest request;
  request.station = "base";
  const auto wire = server.handle_query(request.encode(), sim::SimTime{5000});
  const auto response = proto::StationStatsResponse::decode(wire);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().known);
  EXPECT_EQ(response.value().files, 2);
  EXPECT_EQ(response.value().bytes, (205_KiB).count());
  EXPECT_EQ(response.value().beacons, 1);
}

TEST(ServerQuery, StatsSurviveCompactionExactly) {
  auto server = seeded_server();
  server.compact_received();
  proto::StationStatsRequest request;
  request.station = "base";
  const auto wire = server.handle_query(request.encode(), sim::SimTime{5000});
  const auto response = proto::StationStatsResponse::decode(wire);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().files, 2);
  EXPECT_EQ(response.value().bytes, (205_KiB).count());
}

TEST(ServerQuery, UnknownStationIsKnownFalseNotAnError) {
  auto server = seeded_server();
  proto::StationStatsRequest request;
  request.station = "ghost";
  const auto wire = server.handle_query(request.encode(), sim::SimTime{5000});
  const auto response = proto::StationStatsResponse::decode(wire);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.value().known);
  EXPECT_EQ(response.value().files, 0);
  EXPECT_EQ(server.queries_served(), 1u);
}

TEST(ServerQuery, GroupStatusReflectsLedgerConvergence) {
  auto server = seeded_server();
  proto::GroupStatusRequest request;
  request.group = "dgps";
  auto wire = server.handle_query(request.encode(), sim::SimTime{5000});
  auto response = proto::GroupStatusResponse::decode(wire);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().members, 2);
  EXPECT_EQ(response.value().fresh, 2);
  EXPECT_TRUE(response.value().converged);
  EXPECT_EQ(response.value().state, core::PowerState::kState2);

  // One member disagrees: still fresh, no longer converged.
  server.sync().report_state("reference", core::PowerState::kState1,
                             sim::SimTime{4200});
  wire = server.handle_query(request.encode(), sim::SimTime{5000});
  response = proto::GroupStatusResponse::decode(wire);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().fresh, 2);
  EXPECT_FALSE(response.value().converged);

  // An unknown group is an empty view, not an error.
  proto::GroupStatusRequest unknown;
  unknown.group = "nope";
  wire = server.handle_query(unknown.encode(), sim::SimTime{5000});
  response = proto::GroupStatusResponse::decode(wire);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().members, 0);
  EXPECT_FALSE(response.value().converged);
}

TEST(ServerQuery, RefusalEnvelopeCodes) {
  auto server = seeded_server();
  // Corrupted wire: flip a byte in a valid request.
  std::string corrupt = proto::DirectoryRequest{}.encode();
  corrupt[0] ^= 0x01;
  auto error = proto::QueryError::decode(
      server.handle_query(corrupt, sim::SimTime{5000}));
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().reason, "bad_wire");

  // CRC-valid but not a request the server answers.
  proto::Form stray;
  stray.set("msg", "state_report");
  error = proto::QueryError::decode(
      server.handle_query(stray.encode(), sim::SimTime{5000}));
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().reason, "unknown_msg");

  // Right tag, missing fields.
  proto::Form malformed;
  malformed.set("msg", "stats_request");
  error = proto::QueryError::decode(
      server.handle_query(malformed.encode(), sim::SimTime{5000}));
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().reason, "bad_request");

  EXPECT_EQ(server.queries_served(), 0u);
  EXPECT_EQ(server.queries_refused(), 3u);
}

TEST(ServerQuery, QueriesNeverGrowTheLedgers) {
  auto server = seeded_server();
  const auto directory_before = server.station_directory();
  for (int i = 0; i < 50; ++i) {
    proto::StationStatsRequest request;
    request.station = "ghost" + std::to_string(i);
    (void)server.handle_query(request.encode(), sim::SimTime{5000});
  }
  EXPECT_EQ(server.station_directory(), directory_before);
  EXPECT_EQ(server.files_received(), 3u);
}

}  // namespace
}  // namespace gw::station
