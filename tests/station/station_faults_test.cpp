// Fault-injection tests on the full station: the §VI failure modes wired
// end to end.
#include <gtest/gtest.h>

#include "station/station.h"

namespace gw::station {
namespace {

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{5};
  SouthamptonServer server;
  std::unique_ptr<Station> station;

  StationConfig reliable_base() {
    StationConfig config;
    config.name = "base";
    config.role = StationRole::kBaseStation;
    config.gprs.registration_success = 1.0;
    config.gprs.drop_per_minute = 0.0;
    config.power.battery.initial_soc = 1.0;
    config.initial_state = core::PowerState::kState3;
    return config;
  }

  Station& make(StationConfig config) {
    station = std::make_unique<Station>(simulation, environment, server,
                                        util::Rng{99}, std::move(config));
    power::MainsChargerConfig mains{.season_start_month = 1,
                                    .season_end_month = 12};
    station->add_charger(std::make_unique<power::MainsCharger>(mains));
    station->start();
    return *station;
  }

  void run_days(double days) {
    simulation.run_until(simulation.now() + sim::days(days));
  }
};

TEST(StationFaults, DeadSerialCableLeavesBacklogGrowing) {
  // §VI: the oversized-file risk "could only be caused by an intermittent
  // RS232 cable or dGPS unit". With the cable fully broken, no file ever
  // reaches the CF card and the receiver backlog grows day by day — while
  // the station burns its window retrying.
  Fixture f;
  auto config = f.reliable_base();
  config.serial.fault_probability = 1.0;
  auto& station = f.make(config);
  f.run_days(3.0);
  EXPECT_GT(station.serial().faults(), 300);  // the window spent retrying
  EXPECT_EQ(station.stats().gps_files_fetched, 0);
  EXPECT_GT(station.dgps().stored_files(), 30u);  // the growing backlog
}

TEST(StationFaults, FlakySerialCableStillDrainsViaRetries) {
  // A 95%-faulty cable is slow but not fatal: the file-by-file loop keeps
  // retrying inside the window and most files still get through.
  Fixture f;
  auto config = f.reliable_base();
  config.serial.fault_probability = 0.95;
  auto& station = f.make(config);
  f.run_days(3.0);
  EXPECT_GT(station.serial().faults(), 100);
  EXPECT_GT(station.stats().gps_files_fetched, 10);
}

TEST(StationFaults, HealthySerialKeepsReceiverDrained) {
  Fixture f;
  auto& station = f.make(f.reliable_base());
  f.run_days(3.0);
  EXPECT_EQ(station.serial().faults(), 0);
  // Only the readings taken after the last window remain on the receiver.
  EXPECT_LE(station.dgps().stored_files(), 8u);
  EXPECT_GE(station.stats().gps_files_fetched, 28);
}

TEST(StationFaults, VerboseProbeLoggingIsBudgeted) {
  // §VI: first contact after months produced >1 MB of log. The budget caps
  // what the daily upload carries.
  Fixture f;
  auto config = f.reliable_base();
  config.verbose_probe_logging = true;
  auto& station = f.make(config);
  ProbeNodeConfig probe_config;
  probe_config.probe_id = 21;
  probe_config.sample_interval = sim::minutes(2);  // a chatty probe
  probe_config.weibull_scale_days = 5000.0;
  ProbeNode probe{f.simulation, f.environment, util::Rng{21}, probe_config};
  station.add_probe(probe);
  f.run_days(2.0);
  // Hundreds of readings/day were fetched, but the per-component budget
  // suppressed most of the per-frame debug lines.
  EXPECT_GT(station.stats().probe_readings_delivered, 500u);
  EXPECT_GT(station.log_manager().total_suppressed(), 100u);
  // The logfile rides the upload; its size stays within budget territory.
  bool oversized_log = false;
  for (const auto& file : f.server.received()) {
    if (file.name.rfind("log_", 0) == 0 && file.size.kib() > 64.0) {
      oversized_log = true;
    }
  }
  EXPECT_FALSE(oversized_log);
}

TEST(StationFaults, ForcedCommsNeedsUrgentDataAndCharge) {
  // The §VII override stays quiet when data is routine, even when enabled.
  Fixture f;
  auto config = f.reliable_base();
  config.enable_data_priority = true;
  // Survival-mode firmware: always state 0.
  config.policy.state1_threshold = util::Volts{99.0};
  config.policy.state2_threshold = util::Volts{99.0};
  config.policy.state3_threshold = util::Volts{99.0};
  config.initial_state = core::PowerState::kState0;
  auto& station = f.make(config);
  ProbeNodeConfig probe_config;
  probe_config.probe_id = 21;
  probe_config.weibull_scale_days = 5000.0;
  ProbeNode probe{f.simulation, f.environment, util::Rng{21}, probe_config};
  station.add_probe(probe);
  f.run_days(5.0);  // September: no melt onset, data is routine
  EXPECT_EQ(station.stats().forced_comms_days, 0);
  EXPECT_EQ(station.gprs().sessions_attempted(), 0);
  EXPECT_GT(station.stats().probe_readings_delivered, 50u);  // probes still served
}

TEST(StationFaults, DeadI2cBusKeepsCurrentStateNoCrash) {
  // Fig 2's inter-processor link dies: no voltage samples reach the
  // Gumstix. The station must hold its current state and keep running, not
  // wedge or misclassify.
  Fixture f;
  auto config = f.reliable_base();
  config.bus.nak_probability = 1.0;
  config.initial_state = core::PowerState::kState2;
  auto& station = f.make(config);
  f.run_days(3.0);
  EXPECT_EQ(station.stats().runs_completed, 3);
  EXPECT_EQ(station.current_state(), core::PowerState::kState2);
  EXPECT_TRUE(station.daily_averages().empty());  // no samples ever arrived
  EXPECT_GT(station.bus().naks(), 5);
  EXPECT_GT(f.server.files_from("base"), 0);  // still shipping data
}

TEST(StationFaults, ScienceDataJumpsGpsBacklog) {
  // §VII-adjacent extension end to end: with a month of dGPS backlog in
  // the queue, today's probe readings still reach Southampton today.
  Fixture f;
  auto config = f.reliable_base();
  config.uploads.priority_ordering = true;
  config.prioritize_science_data = true;
  auto& station = f.make(config);
  ProbeNodeConfig probe_config;
  probe_config.probe_id = 21;
  probe_config.weibull_scale_days = 5000.0;
  ProbeNode probe{f.simulation, f.environment, util::Rng{21}, probe_config};
  station.add_probe(probe);
  // A month-sized backlog already queued (e.g. after a GPRS outage).
  for (int i = 0; i < 300; ++i) {
    station.uploads().enqueue("dgps_backlog_" + std::to_string(i),
                              util::kib(165));
  }
  f.run_days(1.0);
  bool probe_file_received = false;
  for (const auto& file : f.server.received()) {
    if (file.name.rfind("probes_", 0) == 0) probe_file_received = true;
  }
  EXPECT_TRUE(probe_file_received);
  EXPECT_GT(station.uploads().queued_files(), 200u);  // backlog remains
}

TEST(StationFaults, GprsHangCountedAndSurvived) {
  Fixture f;
  auto config = f.reliable_base();
  // A state-3 day runs ~25 GPRS sessions (per-file), so even a small
  // per-session hang rate wedges some days.
  config.gprs.hang_per_session = 0.02;
  auto& station = f.make(config);
  f.run_days(6.0);
  EXPECT_GT(station.gprs().hangs(), 0);
  // Hung windows become watchdog aborts; the station keeps cycling and
  // clean days still complete.
  EXPECT_EQ(station.stats().runs_completed + station.stats().runs_aborted, 6);
  EXPECT_GE(station.stats().runs_completed, 1);
  EXPECT_EQ(station.stats().runs_aborted, station.watchdog().expiry_count());
}

TEST(StationFaults, ServerDownWindowDrivesDegradedModeAndRecovery) {
  // A scripted server_down window starves uploads; after
  // degrade_after_failed_days zero-progress days the station enters
  // log-only degraded mode, and the first successful upload after the
  // window exits it.
  Fixture f;
  auto config = f.reliable_base();
  config.degrade_after_failed_days = 2;
  auto& station = f.make(config);
  fault::FaultPlan plan;
  plan.add(fault::FaultWindow{fault::FaultKind::kServerDown, sim::days(0),
                              sim::days(4), 1.0});
  fault::FaultOracle oracle{plan, f.simulation.now()};
  station.set_fault_oracle(&oracle);

  f.run_days(3.0);
  EXPECT_TRUE(station.degraded());
  EXPECT_EQ(station.journal().count(obs::EventType::kDegradedEnter), 1u);
  EXPECT_EQ(f.server.files_from("base"), 0);
  EXPECT_GT(oracle.trips(fault::FaultKind::kServerDown), 0);

  f.run_days(5.0);  // window over: uploads progress again
  EXPECT_FALSE(station.degraded());
  EXPECT_EQ(station.journal().count(obs::EventType::kDegradedExit), 1u);
  EXPECT_GT(f.server.files_from("base"), 0);
  EXPECT_GE(station.stats().degraded_days, 1);
  EXPECT_TRUE(station.gprs().ledger_consistent());
}

TEST(StationFaults, GprsOutageWeekRecoversWithinRetryCadence) {
  // The §I wet-summer scenario as a plan: a week of gprs_outage severity 1.
  // Nothing leaves the glacier during the window; the first daily retry
  // after it drains the backlog — recovery is bounded by the retry cadence.
  Fixture f;
  auto& station = f.make(f.reliable_base());
  fault::FaultPlan plan;
  plan.add(fault::FaultWindow{fault::FaultKind::kGprsOutage, sim::days(1),
                              sim::days(7), 1.0});
  fault::FaultOracle oracle{plan, f.simulation.now()};
  station.set_fault_oracle(&oracle);
  f.run_days(9.0);
  const int received_at_window_end = f.server.files_from("base");
  f.run_days(2.0);  // at most two daily retries after the window
  EXPECT_GT(f.server.files_from("base"), received_at_window_end);
  EXPECT_GT(oracle.trips(fault::FaultKind::kGprsOutage), 0);
  EXPECT_TRUE(station.gprs().ledger_consistent());
}

}  // namespace
}  // namespace gw::station
