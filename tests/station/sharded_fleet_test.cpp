#include "station/sharded_fleet.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace gw::station {
namespace {

// The fleet_test quad, doubled: four dGPS pairs with reliable comms, so
// the partition / routing assertions are about wiring, not luck.
FleetConfig pair_config(int stations) {
  FleetConfig config;
  config.seed = 99;
  config.trace_enabled = false;
  for (int i = 0; i < stations; ++i) {
    StationSpec spec;
    spec.station.name = "s" + std::to_string(i);
    spec.station.role = (i % 2 == 0) ? StationRole::kBaseStation
                                     : StationRole::kReferenceStation;
    spec.station.gprs.registration_success = 1.0;
    spec.station.gprs.drop_per_minute = 0.0;
    spec.station.power.battery.initial_soc = 1.0;
    spec.sync_group = "pair" + std::to_string(i / 2);
    spec.chargers = (i % 2 == 0)
                        ? std::vector<ChargerKind>{ChargerKind::kSolar,
                                                   ChargerKind::kWind}
                        : std::vector<ChargerKind>{ChargerKind::kSolar,
                                                   ChargerKind::kMains};
    spec.probe_count = (i % 2 == 0) ? 2 : 0;
    config.stations.push_back(std::move(spec));
  }
  return config;
}

ShardedFleetConfig sharded_config(int stations, std::size_t shards,
                                  unsigned workers) {
  ShardedFleetConfig config;
  config.fleet = pair_config(stations);
  config.shards = shards;
  config.workers = workers;
  return config;
}

TEST(ShardedFleetTest, GroupsStayTogetherAndRoundRobinOverShards) {
  ShardedFleet fleet{sharded_config(8, 3, 1)};
  EXPECT_EQ(fleet.shard_count(), 3u);
  for (std::size_t pair = 0; pair < 4; ++pair) {
    EXPECT_EQ(fleet.shard_of(2 * pair), fleet.shard_of(2 * pair + 1))
        << "pair" << pair;
    EXPECT_EQ(fleet.shard_of(2 * pair), pair % 3);
  }
}

TEST(ShardedFleetTest, ShardCountClampsToGroupCount) {
  ShardedFleet fleet{sharded_config(4, 99, 1)};
  EXPECT_EQ(fleet.shard_count(), 2u);  // only two sync groups exist
}

TEST(ShardedFleetTest, DerivedLookaheadIsTheGprsRegistrationFloor) {
  auto config = pair_config(4);
  // Minimum over the fleet decides; one fast-registering station lowers it.
  config.stations[2].station.gprs.registration_time = sim::seconds(20);
  EXPECT_EQ(derive_fleet_lookahead(config),
            sim::seconds(20) + sim::seconds(1));
  EXPECT_EQ(derive_fleet_lookahead(FleetConfig{}), sim::minutes(1));

  ShardedFleetConfig sharded;
  sharded.fleet = config;
  sharded.shards = 2;
  ShardedFleet fleet{sharded};
  EXPECT_EQ(fleet.latency(), sim::seconds(21));
  EXPECT_EQ(fleet.sharded().lookahead(), sim::seconds(21));
}

TEST(ShardedFleetTest, SyncConvergesThroughBarrierMessages) {
  ShardedFleet fleet{sharded_config(4, 2, 2)};
  fleet.run_days(6.0);
  // Pairs start deliberately alike here (full batteries), but the min-rule
  // still has to hold them together through the replica relay.
  EXPECT_EQ(fleet.station(0).current_state(),
            fleet.station(1).current_state());
  EXPECT_EQ(fleet.station(2).current_state(),
            fleet.station(3).current_state());
  const auto groups = fleet.group_status();
  ASSERT_EQ(groups.size(), 2u);
  for (const auto& group : groups) {
    EXPECT_EQ(group.members, 2);
    EXPECT_TRUE(group.converged) << group.name;
  }
  // The relay actually carried reports: each replica's ledger holds a
  // peer-stamped entry it could not have produced locally.
  EXPECT_GT(fleet.sharded().messages_delivered(), 0u);
}

TEST(ShardedFleetTest, HubLedgerMatchesReplicaTotals) {
  ShardedFleet fleet{sharded_config(4, 2, 2)};
  fleet.run_days(5.0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::string& name = fleet.station(i).name();
    EXPECT_GT(fleet.hub().files_from(name), 0) << name;
    // The hub's per-station totals equal the replica's exact counters:
    // every receipt was drained and re-played, none duplicated.
    EXPECT_EQ(fleet.hub().files_from(name),
              fleet.station_server(i).files_from(name))
        << name;
    EXPECT_EQ(fleet.hub().bytes_from(name).count(),
              fleet.station_server(i).bytes_from(name).count())
        << name;
    total += std::uint64_t(fleet.hub().files_from(name));
  }
  EXPECT_EQ(total, fleet.hub().files_received());
}

TEST(ShardedFleetTest, QueuedSpecialRoutesToItsStationAndResultsFlowBack) {
  ShardedFleet fleet{sharded_config(4, 2, 1)};
  core::SpecialCommand command;
  command.id = "sp-route";
  command.script = "cat /proc/loadavg";
  fleet.queue_special("s2", command);
  fleet.run_days(3.0);
  EXPECT_GE(fleet.station(2).stats().specials_executed, 1);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (i == 2) continue;
    EXPECT_EQ(fleet.station(i).stats().specials_executed, 0)
        << fleet.station(i).name();
  }
  // The execution record reached the authoritative hub via the barrier.
  ASSERT_FALSE(fleet.hub().special_results().empty());
  EXPECT_EQ(fleet.hub().special_results().front().id, "sp-route");
}

// Fingerprint for partition-invariance checks: everything a season
// observably produced, cheap enough to compare across many runs. The full
// byte-level export gate lives in tests/system/sharded_determinism_test.cpp.
std::string fingerprint(int stations, std::size_t shards, unsigned workers,
                        sim::Duration latency, double days) {
  auto config = sharded_config(stations, shards, workers);
  config.latency = latency;
  ShardedFleet fleet{config};
  fleet.run_days(days);
  fleet.update_rollup();
  std::string out;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto& stats = fleet.station(i).stats();
    out += fleet.station(i).name() + ":" +
           std::to_string(stats.runs_completed) + "," +
           std::to_string(core::to_int(fleet.station(i).current_state())) +
           "," +
           std::to_string(
               fleet.hub().bytes_from(fleet.station(i).name()).count()) +
           ";";
  }
  out += "|events=" + std::to_string(fleet.events_executed());
  out += "|journal=" + std::to_string(fleet.merged_journal().size());
  out += "|converged=";
  for (const auto& group : fleet.group_status()) {
    out += group.converged ? "y" : "n";
  }
  return out;
}

TEST(ShardedFleetTest, SessionLandingOnAWindowBarrierIsPartitionInvariant) {
  // Regression: with a 12-hour latency and the default midnight start, the
  // window grid puts a barrier at exactly 12:00 — the stations' wake
  // instant. The wake event sits on the closing edge of one window while
  // the GPRS session it opens (registration, upload, sync fetch) runs in
  // the next; the drain must still relay every report and receipt exactly
  // once, independent of partition and thread count.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(pair_config(4).stations[i].station.wake_time_of_day,
              sim::hours(12));
  }
  const std::string reference =
      fingerprint(4, 1, 1, sim::hours(12), 4.0);
  EXPECT_EQ(reference, fingerprint(4, 2, 1, sim::hours(12), 4.0));
  EXPECT_EQ(reference, fingerprint(4, 2, 2, sim::hours(12), 4.0));
  // And the half-day latency still converges the pairs.
  EXPECT_NE(reference.find("|converged=yy"), std::string::npos) << reference;
}

TEST(ShardedFleetTest, FingerprintIsInvariantAtDerivedLatency) {
  const std::string reference = fingerprint(8, 1, 1, sim::Duration{0}, 3.0);
  EXPECT_EQ(reference, fingerprint(8, 2, 2, sim::Duration{0}, 3.0));
  EXPECT_EQ(reference, fingerprint(8, 4, 3, sim::Duration{0}, 3.0));
}

TEST(ShardedFleetTest, FindStationAndProbeNaming) {
  ShardedFleet fleet{sharded_config(4, 2, 1)};
  ASSERT_NE(fleet.find_station("s3"), nullptr);
  EXPECT_EQ(fleet.find_station("s3")->name(), "s3");
  EXPECT_EQ(fleet.find_station("nope"), nullptr);
  EXPECT_EQ(fleet.probe_series_name("s2", 21), "s2/probe21");
  EXPECT_EQ(fleet.probes_alive(), 4);
}

}  // namespace
}  // namespace gw::station
