#include "station/deployment.h"

#include <gtest/gtest.h>

namespace gw::station {
namespace {

DeploymentConfig quick_config() {
  DeploymentConfig config;
  // Reliable comms for the structural assertions.
  config.base.gprs.registration_success = 1.0;
  config.base.gprs.drop_per_minute = 0.0;
  config.reference.gprs.registration_success = 1.0;
  config.reference.gprs.drop_per_minute = 0.0;
  config.base.power.battery.initial_soc = 1.0;
  config.reference.power.battery.initial_soc = 1.0;
  return config;
}

TEST(DeploymentTest, BothStationsRunDaily) {
  Deployment deployment{quick_config()};
  deployment.run_days(7.0);
  EXPECT_GE(deployment.base().stats().runs_completed +
                deployment.base().stats().runs_aborted, 6);
  EXPECT_GE(deployment.reference().stats().runs_completed, 6);
}

TEST(DeploymentTest, ServerReceivesBothStations) {
  Deployment deployment{quick_config()};
  deployment.run_days(5.0);
  EXPECT_GT(deployment.server().files_from("base"), 0);
  EXPECT_GT(deployment.server().files_from("reference"), 0);
  EXPECT_GT(deployment.server().bytes_from("base").count(), 0);
}

TEST(DeploymentTest, ProbesDeliverReadings) {
  Deployment deployment{quick_config()};
  deployment.run_days(7.0);
  EXPECT_GT(deployment.base().stats().probe_readings_delivered, 500u);
}

TEST(DeploymentTest, TraceSeriesPresent) {
  Deployment deployment{quick_config()};
  deployment.run_days(2.0);
  for (const auto* name :
       {"base.voltage", "base.state", "base.soc", "reference.voltage",
        "reference.state", "probe20.conductivity", "probe26.conductivity"}) {
    EXPECT_TRUE(deployment.trace().has_series(name)) << name;
  }
  // 30-minute sampling: ~96 points over two days.
  EXPECT_NEAR(double(deployment.trace().series("base.voltage").size()), 97.0,
              3.0);
}

TEST(DeploymentTest, VoltagesStayPhysical) {
  Deployment deployment{quick_config()};
  deployment.run_days(10.0);
  EXPECT_GT(deployment.trace().min_value("base.voltage"), 9.0);
  EXPECT_LE(deployment.trace().max_value("base.voltage"), 14.5);
}

TEST(DeploymentTest, StatesStayInSyncViaServer) {
  Deployment deployment{quick_config()};
  deployment.run_days(10.0);
  // After convergence both stations sit in the same state (min rule).
  EXPECT_EQ(deployment.base().current_state(),
            deployment.reference().current_state());
}

TEST(DeploymentTest, SevenProbesDeployed) {
  Deployment deployment{quick_config()};
  EXPECT_EQ(deployment.probes().size(), 7u);
  EXPECT_EQ(deployment.probes_alive(), 7);
}

TEST(DeploymentTest, DeterministicFromSeed) {
  auto run_once = [](std::uint64_t seed) {
    DeploymentConfig config = quick_config();
    config.seed = seed;
    Deployment deployment{config};
    deployment.run_days(5.0);
    return std::tuple{
        deployment.base().stats().runs_completed,
        deployment.base().stats().probe_readings_delivered,
        deployment.server().bytes_from("base").count(),
        deployment.base().power().battery().soc()};
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

}  // namespace
}  // namespace gw::station
