#include "power/power_system.h"

#include <gtest/gtest.h>

namespace gw::power {
namespace {

using namespace util::literals;

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{11};
  PowerSystemConfig config;
  Fixture() { config.battery.initial_soc = 0.8; }
};

TEST(PowerSystem, LoadsStartOff) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto gumstix = power.add_load("gumstix", 900_mW);
  EXPECT_FALSE(power.load_on(gumstix));
  EXPECT_DOUBLE_EQ(power.total_load_power().value(), 0.0);
}

TEST(PowerSystem, LoadSwitchingChangesDraw) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto gumstix = power.add_load("gumstix", 900_mW);
  const auto gps = power.add_load("dgps", 3600_mW);
  power.set_load(gumstix, true);
  power.set_load(gps, true);
  EXPECT_DOUBLE_EQ(power.total_load_power().value(), 4.5);
  EXPECT_NEAR(power.total_load_current().value(), 0.375, 1e-12);
  power.set_load(gps, false);
  EXPECT_DOUBLE_EQ(power.total_load_power().value(), 0.9);
}

TEST(PowerSystem, EnergyLedgerAccumulates) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto gps = power.add_load("dgps", 3600_mW);
  power.set_load(gps, true);
  power.tick(sim::hours(1));
  // 3.6 W for one hour = 12960 J.
  EXPECT_NEAR(power.consumed_by("dgps").value(), 12960.0, 1e-6);
  EXPECT_NEAR(power.total_consumed().value(), 12960.0, 1e-6);
  EXPECT_THROW((void)power.consumed_by("nope"), std::out_of_range);
}

TEST(PowerSystem, HarvestLedgerTracksChargers) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  power.add_charger(std::make_unique<MainsCharger>(MainsChargerConfig{}));
  // September: café open, mains at 30 W.
  f.simulation.schedule_in(sim::hours(1), [] {});
  power.tick(sim::hours(1));
  EXPECT_NEAR(power.harvested_by("mains").value(), 30.0 * 3600.0, 1e-6);
  EXPECT_THROW((void)power.harvested_by("wind"), std::out_of_range);
}

TEST(PowerSystem, BrownOutDropsAllLoadsAndFiresOnce) {
  Fixture f;
  f.config.battery.initial_soc = 0.02;
  f.config.battery.self_discharge_per_day = 0.0;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto radio = power.add_load("radio", 3960_mW);
  power.set_load(radio, true);
  int brown_outs = 0;
  power.on_brown_out([&] { ++brown_outs; });
  for (int i = 0; i < 72; ++i) power.tick(sim::minutes(30));
  EXPECT_EQ(brown_outs, 1);
  EXPECT_TRUE(power.browned_out());
  EXPECT_FALSE(power.load_on(radio));
  // Loads cannot be switched on while browned out.
  power.set_load(radio, true);
  EXPECT_FALSE(power.load_on(radio));
}

TEST(PowerSystem, RecoveryFiresWhenChargedAboveThreshold) {
  Fixture f;
  f.config.battery.initial_soc = 0.01;
  f.config.battery.self_discharge_per_day = 0.0;
  PowerSystem power{f.simulation, f.environment, f.config};
  power.add_charger(std::make_unique<MainsCharger>(MainsChargerConfig{}));
  const auto load = power.add_load("gumstix", 900_mW);
  power.set_load(load, true);
  int recoveries = 0;
  power.on_recovery([&] { ++recoveries; });
  // Drain to empty first (load exceeds nothing — no charging until ticked
  // with mains; mains is strong so it will recover).
  power.battery().set_soc(0.0);
  power.tick(sim::minutes(1));  // should register brown-out path? (already 0)
  // Charge back with 30 W mains: 2.5 A into 36 Ah -> 15% in ~2.2 h.
  for (int i = 0; i < 10 * 60; ++i) power.tick(sim::minutes(1));
  EXPECT_GE(power.battery().soc(), 0.15);
  EXPECT_FALSE(power.browned_out());
  (void)recoveries;  // edge only fires if brown-out edge seen first
}

TEST(PowerSystem, TerminalVoltageRespondsToLoad) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto gps = power.add_load("dgps", 3600_mW);
  const double rest = power.terminal_voltage().value();
  power.set_load(gps, true);
  const double loaded = power.terminal_voltage().value();
  EXPECT_LT(loaded, rest);
  EXPECT_NEAR(rest - loaded, 0.075, 1e-9);
}

TEST(PowerSystem, StartSchedulesPeriodicTicks) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto gps = power.add_load("dgps", 3600_mW);
  power.set_load(gps, true);
  power.start();
  f.simulation.run_until(f.simulation.now() + sim::hours(2));
  // Two hours of 3.6 W ≈ 25920 J (plus/minus the last partial tick).
  EXPECT_NEAR(power.consumed_by("dgps").value(), 25920.0, 300.0);
}

// --- activity-state components (docs/ENERGY.md) ---------------------------

energy::ComponentSpec modem_spec() {
  energy::ComponentSpec spec;
  spec.name = "modem";
  spec.states.push_back({"off", util::Watts{0.0}, 0.0});
  spec.states.push_back({"idle", util::Watts{0.5}, 0.0});
  spec.states.push_back({"tx", util::Watts{2.5}, 0.0});
  return spec;
}

TEST(PowerSystem, ActivityStatesChangeDraw) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto modem = power.add_component(modem_spec());
  EXPECT_FALSE(power.load_on(modem));
  power.set_activity(modem, 2);
  EXPECT_TRUE(power.load_on(modem));
  EXPECT_DOUBLE_EQ(power.total_load_power().value(), 2.5);
  power.set_activity(modem, 1);
  EXPECT_DOUBLE_EQ(power.total_load_power().value(), 0.5);
}

TEST(PowerSystem, PerStateLedgersSumToDeliveredMeter) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto modem = power.add_component(modem_spec());
  const auto gps = power.add_load("dgps", 3600_mW);
  power.set_activity(modem, 1);
  power.set_load(gps, true);
  for (int i = 0; i < 90; ++i) {
    if (i == 30) power.set_activity(modem, 2);
    if (i == 60) power.set_load(gps, false);
    power.tick(sim::minutes(1));
  }
  // The conservation identity is exact, not approximate: integer quanta
  // land in a component ledger and the battery meter in the same step.
  EXPECT_EQ(power.component_microjoules(), power.delivered_microjoules());
  // Spot-check one ledger: 30 min of idle at 0.5 W = 900 J.
  const energy::ComponentModel* component = power.find_component("modem");
  ASSERT_NE(component, nullptr);
  EXPECT_EQ(component->energy_uj(1), 900000000);
  EXPECT_EQ(component->active_ms(1), 30 * 60 * 1000);
  // The legacy double ledger sees the same totals.
  EXPECT_NEAR(power.total_consumed().value(),
              double(power.delivered_microjoules()) / 1e6, 1e-6);
}

TEST(PowerSystem, PlanAttributesSubTickSpans) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto modem = power.add_component(modem_spec());
  power.set_activity(modem, 1);
  // A 90-second session: 30 s registering-equivalent idle, 60 s tx — laid
  // down as a plan, then integrated by one 2-minute tick. SimTime must
  // advance past the plan for the attribution window to cover it.
  power.plan_activity(modem, {{2, sim::seconds(90)}});
  f.simulation.schedule_in(sim::minutes(2), [] {});
  f.simulation.run_until(f.simulation.now() + sim::minutes(2));
  power.tick(sim::minutes(2));
  const energy::ComponentModel* component = power.find_component("modem");
  ASSERT_NE(component, nullptr);
  // 90 s at 2.5 W = 225 J tx; remaining 30 s at 0.5 W = 15 J idle.
  EXPECT_EQ(component->energy_uj(2), 225000000);
  EXPECT_EQ(component->energy_uj(1), 15000000);
  EXPECT_EQ(power.component_microjoules(), power.delivered_microjoules());
  // The plan expired inside the tick: back to the base activity.
  EXPECT_FALSE(component->has_plan());
}

TEST(PowerSystem, BrownOutRefusesAndJournalsTransitions) {
  Fixture f;
  f.config.battery.initial_soc = 0.02;
  f.config.battery.self_discharge_per_day = 0.0;
  PowerSystem power{f.simulation, f.environment, f.config};
  obs::MetricsRegistry metrics;
  obs::EventJournal journal;
  power.set_hooks({&metrics, &journal});
  const auto modem = power.add_component(modem_spec());
  power.set_activity(modem, 2);
  for (int i = 0; i < 72; ++i) power.tick(sim::minutes(30));
  ASSERT_TRUE(power.browned_out());
  EXPECT_EQ(power.component(modem).activity(), 0u);

  // A transition attempted mid-brown-out is refused and journalled — it
  // must not stick to the post-recovery component.
  power.set_activity(modem, 2);
  EXPECT_EQ(power.component(modem).activity(), 0u);
  auto dropped = journal.of_type(obs::EventType::kActivityDropped);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].component, "modem");
  EXPECT_EQ(dropped[0].a, 2.0);  // requested
  EXPECT_EQ(dropped[0].b, 0.0);  // stayed off

  // Planned attribution is refused the same way...
  power.plan_activity(modem, {{1, sim::seconds(30)}});
  EXPECT_FALSE(power.component(modem).has_plan());
  // ...and so is a draw mutation (the set_load_power shim).
  power.set_load_power(modem, util::Watts{9.9});
  EXPECT_EQ(power.component(modem).state(1).draw.value(), 0.5);
  EXPECT_EQ(journal.count(obs::EventType::kActivityDropped), 3u);

  // Dropping to off is always allowed (it is what the brown-out did).
  power.set_activity(modem, 0);
  EXPECT_EQ(journal.count(obs::EventType::kActivityDropped), 3u);
}

TEST(PowerSystem, SolarDayChargesBatterySeptember) {
  Fixture f;
  f.config.battery.initial_soc = 0.5;
  PowerSystem power{f.simulation, f.environment, f.config};
  power.add_charger(std::make_unique<SolarPanel>(SolarPanelConfig{}));
  power.start();
  const double before = power.battery().soc();
  f.simulation.run_until(f.simulation.now() + sim::days(1));
  EXPECT_GT(power.battery().soc(), before);
}

}  // namespace
}  // namespace gw::power
