#include "power/power_system.h"

#include <gtest/gtest.h>

namespace gw::power {
namespace {

using namespace util::literals;

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{11};
  PowerSystemConfig config;
  Fixture() { config.battery.initial_soc = 0.8; }
};

TEST(PowerSystem, LoadsStartOff) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto gumstix = power.add_load("gumstix", 900_mW);
  EXPECT_FALSE(power.load_on(gumstix));
  EXPECT_DOUBLE_EQ(power.total_load_power().value(), 0.0);
}

TEST(PowerSystem, LoadSwitchingChangesDraw) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto gumstix = power.add_load("gumstix", 900_mW);
  const auto gps = power.add_load("dgps", 3600_mW);
  power.set_load(gumstix, true);
  power.set_load(gps, true);
  EXPECT_DOUBLE_EQ(power.total_load_power().value(), 4.5);
  EXPECT_NEAR(power.total_load_current().value(), 0.375, 1e-12);
  power.set_load(gps, false);
  EXPECT_DOUBLE_EQ(power.total_load_power().value(), 0.9);
}

TEST(PowerSystem, EnergyLedgerAccumulates) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto gps = power.add_load("dgps", 3600_mW);
  power.set_load(gps, true);
  power.tick(sim::hours(1));
  // 3.6 W for one hour = 12960 J.
  EXPECT_NEAR(power.consumed_by("dgps").value(), 12960.0, 1e-6);
  EXPECT_NEAR(power.total_consumed().value(), 12960.0, 1e-6);
  EXPECT_THROW((void)power.consumed_by("nope"), std::out_of_range);
}

TEST(PowerSystem, HarvestLedgerTracksChargers) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  power.add_charger(std::make_unique<MainsCharger>(MainsChargerConfig{}));
  // September: café open, mains at 30 W.
  f.simulation.schedule_in(sim::hours(1), [] {});
  power.tick(sim::hours(1));
  EXPECT_NEAR(power.harvested_by("mains").value(), 30.0 * 3600.0, 1e-6);
  EXPECT_THROW((void)power.harvested_by("wind"), std::out_of_range);
}

TEST(PowerSystem, BrownOutDropsAllLoadsAndFiresOnce) {
  Fixture f;
  f.config.battery.initial_soc = 0.02;
  f.config.battery.self_discharge_per_day = 0.0;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto radio = power.add_load("radio", 3960_mW);
  power.set_load(radio, true);
  int brown_outs = 0;
  power.on_brown_out([&] { ++brown_outs; });
  for (int i = 0; i < 72; ++i) power.tick(sim::minutes(30));
  EXPECT_EQ(brown_outs, 1);
  EXPECT_TRUE(power.browned_out());
  EXPECT_FALSE(power.load_on(radio));
  // Loads cannot be switched on while browned out.
  power.set_load(radio, true);
  EXPECT_FALSE(power.load_on(radio));
}

TEST(PowerSystem, RecoveryFiresWhenChargedAboveThreshold) {
  Fixture f;
  f.config.battery.initial_soc = 0.01;
  f.config.battery.self_discharge_per_day = 0.0;
  PowerSystem power{f.simulation, f.environment, f.config};
  power.add_charger(std::make_unique<MainsCharger>(MainsChargerConfig{}));
  const auto load = power.add_load("gumstix", 900_mW);
  power.set_load(load, true);
  int recoveries = 0;
  power.on_recovery([&] { ++recoveries; });
  // Drain to empty first (load exceeds nothing — no charging until ticked
  // with mains; mains is strong so it will recover).
  power.battery().set_soc(0.0);
  power.tick(sim::minutes(1));  // should register brown-out path? (already 0)
  // Charge back with 30 W mains: 2.5 A into 36 Ah -> 15% in ~2.2 h.
  for (int i = 0; i < 10 * 60; ++i) power.tick(sim::minutes(1));
  EXPECT_GE(power.battery().soc(), 0.15);
  EXPECT_FALSE(power.browned_out());
  (void)recoveries;  // edge only fires if brown-out edge seen first
}

TEST(PowerSystem, TerminalVoltageRespondsToLoad) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto gps = power.add_load("dgps", 3600_mW);
  const double rest = power.terminal_voltage().value();
  power.set_load(gps, true);
  const double loaded = power.terminal_voltage().value();
  EXPECT_LT(loaded, rest);
  EXPECT_NEAR(rest - loaded, 0.075, 1e-9);
}

TEST(PowerSystem, StartSchedulesPeriodicTicks) {
  Fixture f;
  PowerSystem power{f.simulation, f.environment, f.config};
  const auto gps = power.add_load("dgps", 3600_mW);
  power.set_load(gps, true);
  power.start();
  f.simulation.run_until(f.simulation.now() + sim::hours(2));
  // Two hours of 3.6 W ≈ 25920 J (plus/minus the last partial tick).
  EXPECT_NEAR(power.consumed_by("dgps").value(), 25920.0, 300.0);
}

TEST(PowerSystem, SolarDayChargesBatterySeptember) {
  Fixture f;
  f.config.battery.initial_soc = 0.5;
  PowerSystem power{f.simulation, f.environment, f.config};
  power.add_charger(std::make_unique<SolarPanel>(SolarPanelConfig{}));
  power.start();
  const double before = power.battery().soc();
  f.simulation.run_until(f.simulation.now() + sim::days(1));
  EXPECT_GT(power.battery().soc(), before);
}

}  // namespace
}  // namespace gw::power
