#include "power/battery.h"

#include <gtest/gtest.h>

namespace gw::power {
namespace {

using util::Amps;
using util::Celsius;
using util::Volts;

LeadAcidBattery make_battery(double soc = 0.9) {
  BatteryConfig config;
  config.initial_soc = soc;
  return LeadAcidBattery{config};
}

TEST(Battery, OcvTracksSoc) {
  auto battery = make_battery(1.0);
  EXPECT_NEAR(battery.open_circuit_voltage().value(), 12.75, 1e-9);
  battery.set_soc(0.15);  // the knee
  EXPECT_NEAR(battery.open_circuit_voltage().value(), 11.9, 1e-9);
  battery.set_soc(0.0);   // collapsed tail
  EXPECT_NEAR(battery.open_circuit_voltage().value(), 10.5, 1e-9);
}

TEST(Battery, OcvKneeMakesStateZeroReachable) {
  // Table 2's state-0 threshold is 11.5 V; the collapse below the knee is
  // what lets a resting battery ever read that low.
  auto battery = make_battery(0.05);
  EXPECT_LT(battery.open_circuit_voltage().value(), 11.5);
  battery.set_soc(0.12);
  EXPECT_GT(battery.open_circuit_voltage().value(), 11.5);
}

TEST(Battery, OcvMonotoneInSoc) {
  auto battery = make_battery(0.0);
  double prev = 0.0;
  for (double soc = 0.0; soc <= 1.0; soc += 0.01) {
    battery.set_soc(soc);
    const double v = battery.open_circuit_voltage().value();
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Battery, DischargeDropsTerminalVoltage) {
  auto battery = make_battery(0.8);
  const double rest = battery.terminal_voltage(Amps{0.0}).value();
  const double loaded = battery.terminal_voltage(Amps{-0.3}).value();
  // 300 mA dGPS load through 0.25 ohm: 75 mV dip (the Fig 5 ripple).
  EXPECT_NEAR(rest - loaded, 0.075, 1e-9);
}

TEST(Battery, ChargingLiftsVoltageTowardFloatLimit) {
  auto battery = make_battery(0.8);
  const double rest = battery.terminal_voltage(Amps{0.0}).value();
  const double charging = battery.terminal_voltage(Amps{3.0}).value();
  EXPECT_GT(charging, rest + 1.0);
  // Hard regulator clamp at 14.5 V (Fig 5 ceiling).
  const double heavy = battery.terminal_voltage(Amps{10.0}).value();
  EXPECT_DOUBLE_EQ(heavy, 14.5);
}

TEST(Battery, ContinuousGpsDepletesInFiveDays) {
  // §III: 3.6 W continuous dGPS flattens a 36 Ah bank in 5 days.
  BatteryConfig config;
  config.initial_soc = 1.0;
  config.self_discharge_per_day = 0.0;
  LeadAcidBattery battery{config};
  const Amps gps = util::Watts{3.6} / Volts{12.0};
  double hours = 0.0;
  while (!battery.empty() && hours < 24.0 * 30) {
    battery.step(Amps{0.0}, gps, 0.5, Celsius{25.0});
    hours += 0.5;
  }
  EXPECT_NEAR(hours / 24.0, 5.0, 0.05);
}

TEST(Battery, State3DutyCycleLastsAboutFourMonths) {
  // §III: in state 3 the dGPS "would deplete the reserves in 117 days".
  // 12 readings/day × ~308 s at 300 mA.
  BatteryConfig config;
  config.initial_soc = 1.0;
  config.self_discharge_per_day = 0.0;
  LeadAcidBattery battery{config};
  const Amps gps = util::Watts{3.6} / Volts{12.0};
  const double on_hours_per_day = 12.0 * 308.0 / 3600.0;
  double day = 0.0;
  while (!battery.empty() && day < 365.0) {
    battery.step(Amps{0.0}, gps, on_hours_per_day, Celsius{25.0});
    day += 1.0;
  }
  EXPECT_NEAR(day, 117.0, 2.0);
}

TEST(Battery, ChargeEfficiencyLosesEnergy) {
  BatteryConfig config;
  config.initial_soc = 0.5;
  config.self_discharge_per_day = 0.0;
  LeadAcidBattery battery{config};
  const double before = battery.soc();
  battery.step(Amps{1.0}, Amps{0.0}, 1.0, Celsius{25.0});
  const double gained = (battery.soc() - before) * 36.0;
  EXPECT_NEAR(gained, 0.88, 1e-6);  // coulombic efficiency
}

TEST(Battery, AcceptanceTapersNearFull) {
  auto battery = make_battery(0.95);
  const util::Amps accepted = battery.accepted_charge_current(Amps{2.0});
  EXPECT_LT(accepted.value(), 2.0);
  EXPECT_GT(accepted.value(), 0.0);
  battery.set_soc(1.0);
  EXPECT_DOUBLE_EQ(battery.accepted_charge_current(Amps{2.0}).value(), 0.0);
  battery.set_soc(0.5);
  EXPECT_DOUBLE_EQ(battery.accepted_charge_current(Amps{2.0}).value(), 2.0);
}

TEST(Battery, ColdReducesUsableCapacity) {
  const auto battery = make_battery();
  const double warm = battery.effective_capacity(Celsius{25.0}).value();
  const double cold = battery.effective_capacity(Celsius{-15.0}).value();
  EXPECT_LT(cold, warm);
  EXPECT_GE(cold, warm * 0.55);
}

TEST(Battery, StepReportsEmptyEdgeExactlyOnce) {
  BatteryConfig config;
  config.initial_soc = 0.01;
  config.self_discharge_per_day = 0.0;
  LeadAcidBattery battery{config};
  bool edge = false;
  int edges = 0;
  for (int i = 0; i < 100; ++i) {
    edge = battery.step(Amps{0.0}, Amps{1.0}, 1.0, Celsius{25.0});
    if (edge) ++edges;
  }
  EXPECT_EQ(edges, 1);
  EXPECT_TRUE(battery.empty());
}

TEST(Battery, SocClamped) {
  auto battery = make_battery(0.99);
  for (int i = 0; i < 100; ++i) {
    battery.step(Amps{5.0}, Amps{0.0}, 1.0, Celsius{25.0});
  }
  EXPECT_LE(battery.soc(), 1.0);
  for (int i = 0; i < 1000; ++i) {
    battery.step(Amps{0.0}, Amps{5.0}, 1.0, Celsius{25.0});
  }
  EXPECT_GE(battery.soc(), 0.0);
}

// --- edge cases around the energy-accounting refactor (docs/ENERGY.md) ----

// Coulomb conservation: away from the clamps and the taper, every step
// moves SoC by exactly (accepted*eff - load)*h / cap - self_discharge*h/24.
// Harvest minus consumption equals the SoC delta times effective capacity,
// give or take self-discharge — the battery neither mints nor burns charge.
TEST(Battery, StepConservesCharge) {
  BatteryConfig config;
  config.initial_soc = 0.5;
  config.self_discharge_per_day = 0.02;
  LeadAcidBattery battery{config};
  const Celsius temp{10.0};
  const double cap = battery.effective_capacity(temp).value();

  const struct {
    double charge_a;
    double load_a;
    double hours;
  } steps[] = {
      {0.0, 0.5, 2.0}, {2.0, 0.3, 1.0}, {1.2, 1.2, 3.0},
      {0.0, 0.0, 6.0}, {2.5, 0.1, 0.5},
  };
  double predicted = config.initial_soc;
  double harvested_ah = 0.0;
  double consumed_ah = 0.0;
  double hours = 0.0;
  for (const auto& s : steps) {
    const double accepted =
        battery.accepted_charge_current(Amps{s.charge_a}).value();
    harvested_ah += accepted * config.coulombic_efficiency * s.hours;
    consumed_ah += s.load_a * s.hours;
    hours += s.hours;
    predicted += (accepted * config.coulombic_efficiency - s.load_a) *
                 s.hours / cap;
    predicted -= config.self_discharge_per_day * s.hours / 24.0;
    battery.step(Amps{s.charge_a}, Amps{s.load_a}, s.hours, temp);
    EXPECT_NEAR(battery.soc(), predicted, 1e-12);
  }
  // The same identity, stated as the ledger sees it.
  const double delta_soc = battery.soc() - config.initial_soc;
  const double self_discharge_soc =
      config.self_discharge_per_day * hours / 24.0;
  EXPECT_NEAR(harvested_ah - consumed_ah,
              (delta_soc + self_discharge_soc) * cap, 1e-9);
}

// Table 2's 11.5 V state-0 threshold is crossed *at rest* strictly below
// the knee: on the plateau the OCV never reads that low, on the collapse
// it does — and the crossing point is where the collapse line says.
TEST(Battery, KneeVoltageCrossingAtRest) {
  auto battery = make_battery(0.15);
  // Plateau side: everywhere at/above the knee stays above 11.5 V.
  for (double soc = 0.15; soc <= 1.0; soc += 0.05) {
    battery.set_soc(soc);
    EXPECT_GT(battery.terminal_voltage(Amps{0.0}).value(), 11.5);
  }
  // Collapse line 10.5 + 1.4 * soc / 0.15 reads 11.5 at soc ~= 0.1071.
  const double crossing = 0.15 * (11.5 - 10.5) / (11.9 - 10.5);
  battery.set_soc(crossing + 1e-3);
  EXPECT_GT(battery.terminal_voltage(Amps{0.0}).value(), 11.5);
  battery.set_soc(crossing - 1e-3);
  EXPECT_LT(battery.terminal_voltage(Amps{0.0}).value(), 11.5);
  EXPECT_LT(crossing, battery.config().knee_soc);
}

// The cold derating clamps at the deep-cold floor instead of marching to
// zero: a -60 C glacier night still leaves min_capacity_fraction of the
// bank, and mild warmth never credits more than 105%.
TEST(Battery, ColdDeratedCapacityClampsAtFloor) {
  auto battery = make_battery();
  const double nominal = battery.nominal_capacity().value();
  // 1 + 0.008 * (-60 - 25) = 0.32, below the 0.55 floor -> clamped.
  EXPECT_NEAR(battery.effective_capacity(Celsius{-60.0}).value(),
              nominal * 0.55, 1e-9);
  EXPECT_NEAR(battery.effective_capacity(Celsius{-150.0}).value(),
              nominal * 0.55, 1e-9);
  // Warm ceiling.
  EXPECT_NEAR(battery.effective_capacity(Celsius{60.0}).value(),
              nominal * 1.05, 1e-9);
}

// Acceptance is linear in the remaining headroom above the taper start and
// reaches exactly zero at full — charging a full bank is a no-op, not an
// overflow.
TEST(Battery, AcceptanceTaperIsLinearAndZeroAtFull) {
  auto battery = make_battery(0.95);
  // Halfway between taper start (0.90) and full: half the offer.
  EXPECT_NEAR(battery.accepted_charge_current(Amps{2.0}).value(), 1.0, 1e-12);
  battery.set_soc(1.0);
  EXPECT_EQ(battery.accepted_charge_current(Amps{2.0}).value(), 0.0);
  const bool emptied = battery.step(Amps{5.0}, Amps{0.0}, 10.0, Celsius{25.0});
  EXPECT_FALSE(emptied);
  // Only self-discharge moved it.
  EXPECT_NEAR(battery.soc(),
              1.0 - battery.config().self_discharge_per_day * 10.0 / 24.0,
              1e-12);
}

TEST(Battery, SelfDischargeAlone) {
  BatteryConfig config;
  config.initial_soc = 0.5;
  LeadAcidBattery battery{config};
  for (int day = 0; day < 30; ++day) {
    battery.step(Amps{0.0}, Amps{0.0}, 24.0, Celsius{10.0});
  }
  EXPECT_NEAR(battery.soc(), 0.5 - 0.001 * 30, 1e-6);
}

}  // namespace
}  // namespace gw::power
