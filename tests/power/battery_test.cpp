#include "power/battery.h"

#include <gtest/gtest.h>

namespace gw::power {
namespace {

using util::Amps;
using util::Celsius;
using util::Volts;

LeadAcidBattery make_battery(double soc = 0.9) {
  BatteryConfig config;
  config.initial_soc = soc;
  return LeadAcidBattery{config};
}

TEST(Battery, OcvTracksSoc) {
  auto battery = make_battery(1.0);
  EXPECT_NEAR(battery.open_circuit_voltage().value(), 12.75, 1e-9);
  battery.set_soc(0.15);  // the knee
  EXPECT_NEAR(battery.open_circuit_voltage().value(), 11.9, 1e-9);
  battery.set_soc(0.0);   // collapsed tail
  EXPECT_NEAR(battery.open_circuit_voltage().value(), 10.5, 1e-9);
}

TEST(Battery, OcvKneeMakesStateZeroReachable) {
  // Table 2's state-0 threshold is 11.5 V; the collapse below the knee is
  // what lets a resting battery ever read that low.
  auto battery = make_battery(0.05);
  EXPECT_LT(battery.open_circuit_voltage().value(), 11.5);
  battery.set_soc(0.12);
  EXPECT_GT(battery.open_circuit_voltage().value(), 11.5);
}

TEST(Battery, OcvMonotoneInSoc) {
  auto battery = make_battery(0.0);
  double prev = 0.0;
  for (double soc = 0.0; soc <= 1.0; soc += 0.01) {
    battery.set_soc(soc);
    const double v = battery.open_circuit_voltage().value();
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Battery, DischargeDropsTerminalVoltage) {
  auto battery = make_battery(0.8);
  const double rest = battery.terminal_voltage(Amps{0.0}).value();
  const double loaded = battery.terminal_voltage(Amps{-0.3}).value();
  // 300 mA dGPS load through 0.25 ohm: 75 mV dip (the Fig 5 ripple).
  EXPECT_NEAR(rest - loaded, 0.075, 1e-9);
}

TEST(Battery, ChargingLiftsVoltageTowardFloatLimit) {
  auto battery = make_battery(0.8);
  const double rest = battery.terminal_voltage(Amps{0.0}).value();
  const double charging = battery.terminal_voltage(Amps{3.0}).value();
  EXPECT_GT(charging, rest + 1.0);
  // Hard regulator clamp at 14.5 V (Fig 5 ceiling).
  const double heavy = battery.terminal_voltage(Amps{10.0}).value();
  EXPECT_DOUBLE_EQ(heavy, 14.5);
}

TEST(Battery, ContinuousGpsDepletesInFiveDays) {
  // §III: 3.6 W continuous dGPS flattens a 36 Ah bank in 5 days.
  BatteryConfig config;
  config.initial_soc = 1.0;
  config.self_discharge_per_day = 0.0;
  LeadAcidBattery battery{config};
  const Amps gps = util::Watts{3.6} / Volts{12.0};
  double hours = 0.0;
  while (!battery.empty() && hours < 24.0 * 30) {
    battery.step(Amps{0.0}, gps, 0.5, Celsius{25.0});
    hours += 0.5;
  }
  EXPECT_NEAR(hours / 24.0, 5.0, 0.05);
}

TEST(Battery, State3DutyCycleLastsAboutFourMonths) {
  // §III: in state 3 the dGPS "would deplete the reserves in 117 days".
  // 12 readings/day × ~308 s at 300 mA.
  BatteryConfig config;
  config.initial_soc = 1.0;
  config.self_discharge_per_day = 0.0;
  LeadAcidBattery battery{config};
  const Amps gps = util::Watts{3.6} / Volts{12.0};
  const double on_hours_per_day = 12.0 * 308.0 / 3600.0;
  double day = 0.0;
  while (!battery.empty() && day < 365.0) {
    battery.step(Amps{0.0}, gps, on_hours_per_day, Celsius{25.0});
    day += 1.0;
  }
  EXPECT_NEAR(day, 117.0, 2.0);
}

TEST(Battery, ChargeEfficiencyLosesEnergy) {
  BatteryConfig config;
  config.initial_soc = 0.5;
  config.self_discharge_per_day = 0.0;
  LeadAcidBattery battery{config};
  const double before = battery.soc();
  battery.step(Amps{1.0}, Amps{0.0}, 1.0, Celsius{25.0});
  const double gained = (battery.soc() - before) * 36.0;
  EXPECT_NEAR(gained, 0.88, 1e-6);  // coulombic efficiency
}

TEST(Battery, AcceptanceTapersNearFull) {
  auto battery = make_battery(0.95);
  const util::Amps accepted = battery.accepted_charge_current(Amps{2.0});
  EXPECT_LT(accepted.value(), 2.0);
  EXPECT_GT(accepted.value(), 0.0);
  battery.set_soc(1.0);
  EXPECT_DOUBLE_EQ(battery.accepted_charge_current(Amps{2.0}).value(), 0.0);
  battery.set_soc(0.5);
  EXPECT_DOUBLE_EQ(battery.accepted_charge_current(Amps{2.0}).value(), 2.0);
}

TEST(Battery, ColdReducesUsableCapacity) {
  const auto battery = make_battery();
  const double warm = battery.effective_capacity(Celsius{25.0}).value();
  const double cold = battery.effective_capacity(Celsius{-15.0}).value();
  EXPECT_LT(cold, warm);
  EXPECT_GE(cold, warm * 0.55);
}

TEST(Battery, StepReportsEmptyEdgeExactlyOnce) {
  BatteryConfig config;
  config.initial_soc = 0.01;
  config.self_discharge_per_day = 0.0;
  LeadAcidBattery battery{config};
  bool edge = false;
  int edges = 0;
  for (int i = 0; i < 100; ++i) {
    edge = battery.step(Amps{0.0}, Amps{1.0}, 1.0, Celsius{25.0});
    if (edge) ++edges;
  }
  EXPECT_EQ(edges, 1);
  EXPECT_TRUE(battery.empty());
}

TEST(Battery, SocClamped) {
  auto battery = make_battery(0.99);
  for (int i = 0; i < 100; ++i) {
    battery.step(Amps{5.0}, Amps{0.0}, 1.0, Celsius{25.0});
  }
  EXPECT_LE(battery.soc(), 1.0);
  for (int i = 0; i < 1000; ++i) {
    battery.step(Amps{0.0}, Amps{5.0}, 1.0, Celsius{25.0});
  }
  EXPECT_GE(battery.soc(), 0.0);
}

TEST(Battery, SelfDischargeAlone) {
  BatteryConfig config;
  config.initial_soc = 0.5;
  LeadAcidBattery battery{config};
  for (int day = 0; day < 30; ++day) {
    battery.step(Amps{0.0}, Amps{0.0}, 24.0, Celsius{10.0});
  }
  EXPECT_NEAR(battery.soc(), 0.5 - 0.001 * 30, 1e-6);
}

}  // namespace
}  // namespace gw::power
