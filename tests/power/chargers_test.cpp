#include "power/chargers.h"

#include <gtest/gtest.h>

namespace gw::power {
namespace {

TEST(SolarPanelCharger, ZeroAtNightScalesWithSun) {
  env::Environment environment{42};
  SolarPanel panel{SolarPanelConfig{}};
  const auto day = sim::at_midnight(2009, 6, 21);
  EXPECT_DOUBLE_EQ(panel.output(day, environment).value(), 0.0);
  EXPECT_GT(panel.output(day + sim::hours(12), environment).value(), 0.5);
}

TEST(SolarPanelCharger, NeverExceedsRatedTimesMargin) {
  env::Environment environment{42};
  SolarPanel panel{SolarPanelConfig{}};
  for (int hour = 0; hour < 24 * 10; ++hour) {
    const auto t = sim::at_midnight(2009, 6, 1) + sim::hours(hour);
    EXPECT_LE(panel.output(t, environment).value(), 10.0 * 1.2);
    EXPECT_GE(panel.output(t, environment).value(), 0.0);
  }
}

TEST(SolarPanelCharger, SnowOcclusionKillsWinterOutput) {
  // Run a winter with heavy snow; occluded panel must produce less than the
  // same panel in a snow-free environment.
  env::EnvironmentConfig snowy;
  snowy.snow.background_accumulation_m = 0.05;
  env::Environment with_snow{snowy, 7};

  env::EnvironmentConfig clear;
  clear.snow.background_accumulation_m = 0.0;
  clear.snow.storm_probability_per_day = 0.0;
  env::Environment no_snow{clear, 7};

  SolarPanel panel{SolarPanelConfig{}};
  double snow_total = 0.0;
  double clear_total = 0.0;
  for (int day = 0; day < 90; ++day) {
    const auto noon =
        sim::at_midnight(2008, 12, 1) + sim::days(day) + sim::hours(12);
    snow_total += panel.output(noon, with_snow).value();
    clear_total += panel.output(noon, no_snow).value();
  }
  EXPECT_LT(snow_total, clear_total * 0.5);
}

TEST(WindTurbineCharger, PowerCurveShape) {
  env::Environment environment{42};
  WindTurbine turbine{WindTurbineConfig{}};
  // Below cut-in.
  // We can't inject speed directly; instead test the curve via config
  // boundaries using a dedicated speed sweep on the formula-level contract:
  // cut-in 3 m/s -> 0 W, rated 12 m/s -> 50 W, cubic in between, 0 beyond
  // cut-out. Covered through many sampled hours: output within [0, rated].
  for (int hour = 0; hour < 24 * 60; ++hour) {
    const auto t = sim::at_midnight(2009, 1, 1) + sim::hours(hour);
    const double w = turbine.output(t, environment).value();
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 50.0);
  }
}

TEST(WindTurbineCharger, BuriedTurbineProducesNothing) {
  env::EnvironmentConfig config;
  config.snow.background_accumulation_m = 0.2;  // bury fast
  env::Environment environment{config, 3};
  WindTurbine turbine{WindTurbineConfig{}};
  // Snow integrates forward from the first query: walk from October so by
  // late winter the turbine is buried (depth > 2 m) and output is 0.
  (void)environment.snow().depth(sim::at_midnight(2008, 10, 1),
                                 environment.temperature());
  const auto t = sim::at_midnight(2009, 3, 1) + sim::hours(12);
  ASSERT_TRUE(
      environment.snow().turbine_buried(t, environment.temperature()));
  EXPECT_DOUBLE_EQ(turbine.output(t, environment).value(), 0.0);
}

TEST(MainsChargerSeason, TouristSeasonOnly) {
  env::Environment environment{42};
  MainsCharger mains{MainsChargerConfig{}};
  // §II: café power available April–September only.
  EXPECT_DOUBLE_EQ(
      mains.output(sim::at_midnight(2009, 1, 15), environment).value(), 0.0);
  EXPECT_DOUBLE_EQ(
      mains.output(sim::at_midnight(2009, 3, 31), environment).value(), 0.0);
  EXPECT_GT(
      mains.output(sim::at_midnight(2009, 4, 1), environment).value(), 0.0);
  EXPECT_GT(
      mains.output(sim::at_midnight(2009, 9, 30), environment).value(), 0.0);
  EXPECT_DOUBLE_EQ(
      mains.output(sim::at_midnight(2009, 10, 1), environment).value(), 0.0);
  EXPECT_DOUBLE_EQ(
      mains.output(sim::at_midnight(2009, 12, 25), environment).value(), 0.0);
}

}  // namespace
}  // namespace gw::power
