// Property sweeps over the battery model: invariants that must hold for
// any load, temperature and capacity in the operating envelope.
#include <gtest/gtest.h>

#include "power/battery.h"

namespace gw::power {
namespace {

using util::Amps;
using util::Celsius;

struct BatteryCase {
  double load_watts;
  double temperature_c;
  double capacity_ah;
};

class BatterySweep : public ::testing::TestWithParam<BatteryCase> {};

TEST_P(BatterySweep, DischargeIsMonotoneAndBounded) {
  const auto param = GetParam();
  BatteryConfig config;
  config.capacity = util::AmpHours{param.capacity_ah};
  config.initial_soc = 1.0;
  config.self_discharge_per_day = 0.0;
  LeadAcidBattery battery{config};
  const Amps load = util::Watts{param.load_watts} / util::Volts{12.0};
  double previous_soc = battery.soc();
  double previous_voltage = battery.terminal_voltage(-load).value();
  for (int hour = 0; hour < 24 * 400 && !battery.empty(); ++hour) {
    battery.step(Amps{0.0}, load, 1.0, Celsius{param.temperature_c});
    const double soc = battery.soc();
    const double voltage = battery.terminal_voltage(-load).value();
    EXPECT_LE(soc, previous_soc);          // discharge never adds charge
    EXPECT_LE(voltage, previous_voltage + 1e-9);  // voltage never rises
    EXPECT_GE(soc, 0.0);
    EXPECT_GT(voltage, 8.0);
    previous_soc = soc;
    previous_voltage = voltage;
  }
  EXPECT_TRUE(battery.empty());  // every constant load eventually wins
}

TEST_P(BatterySweep, LifetimeScalesInverselyWithLoad) {
  const auto param = GetParam();
  auto lifetime_hours = [&](double watts) {
    BatteryConfig config;
    config.capacity = util::AmpHours{param.capacity_ah};
    config.initial_soc = 1.0;
    config.self_discharge_per_day = 0.0;
    LeadAcidBattery battery{config};
    const Amps load = util::Watts{watts} / util::Volts{12.0};
    double hours = 0.0;
    while (!battery.empty() && hours < 24.0 * 2000) {
      battery.step(Amps{0.0}, load, 1.0, Celsius{param.temperature_c});
      hours += 1.0;
    }
    return hours;
  };
  const double at_load = lifetime_hours(param.load_watts);
  const double at_double = lifetime_hours(2.0 * param.load_watts);
  // Double the load, roughly half the life (integer-hour quantisation).
  EXPECT_NEAR(at_load / at_double, 2.0, 0.1);
}

TEST_P(BatterySweep, ColdNeverExtendsLife) {
  const auto param = GetParam();
  auto lifetime = [&](double temp) {
    BatteryConfig config;
    config.capacity = util::AmpHours{param.capacity_ah};
    config.initial_soc = 1.0;
    config.self_discharge_per_day = 0.0;
    LeadAcidBattery battery{config};
    const Amps load = util::Watts{param.load_watts} / util::Volts{12.0};
    double hours = 0.0;
    while (!battery.empty() && hours < 24.0 * 2000) {
      battery.step(Amps{0.0}, load, 1.0, Celsius{temp});
      hours += 1.0;
    }
    return hours;
  };
  EXPECT_LE(lifetime(-20.0), lifetime(param.temperature_c) + 1.0);
  EXPECT_LE(lifetime(param.temperature_c), lifetime(25.0) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    OperatingEnvelope, BatterySweep,
    ::testing::Values(BatteryCase{0.9, 25.0, 36.0},    // Gumstix, warm lab
                      BatteryCase{3.6, 25.0, 36.0},    // dGPS, paper's case
                      BatteryCase{3.6, -10.0, 36.0},   // dGPS in winter
                      BatteryCase{0.16, -10.0, 36.0},  // Norway sleep draw
                      BatteryCase{2.64, 0.0, 85.0},    // GPRS, big bank
                      BatteryCase{7.56, -20.0, 36.0}   // everything on, cold
                      ));

TEST(BatteryProperty, ChargeDischargeCycleLosesEnergy) {
  // Round-trip efficiency < 1 at every depth of discharge.
  for (double depth = 0.1; depth <= 0.9; depth += 0.2) {
    BatteryConfig config;
    config.initial_soc = 1.0;
    config.self_discharge_per_day = 0.0;
    LeadAcidBattery battery{config};
    // Discharge `depth` of the bank...
    const double amp_hours = depth * 36.0;
    battery.step(Amps{0.0}, Amps{amp_hours}, 1.0, Celsius{25.0});
    // ...then offer exactly that charge back.
    battery.step(Amps{amp_hours}, Amps{0.0}, 1.0, Celsius{25.0});
    EXPECT_LT(battery.soc(), 1.0) << "depth " << depth;
  }
}

}  // namespace
}  // namespace gw::power
