// ComponentModel: the activity-state energy ledger (docs/ENERGY.md).
#include "energy/component_model.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "snapshot/archive.h"
#include "snapshot/error.h"

namespace gw::energy {
namespace {

ComponentSpec gprs_like_spec() {
  ComponentSpec spec;
  spec.name = "gprs";
  spec.states.push_back({"off", util::Watts{0.0}, 0.0});
  spec.states.push_back({"idle", util::Watts{0.5}, 0.0});
  spec.states.push_back({"registering", util::Watts{1.2}, 0.0});
  spec.states.push_back({"tx", util::Watts{2.64}, 0.0});
  return spec;
}

TEST(ComponentModelTest, SwitchedLoadShape) {
  ComponentModel model{switched_load("radio", util::Watts{3.96})};
  EXPECT_EQ(model.name(), "radio");
  ASSERT_EQ(model.state_count(), 2u);
  EXPECT_EQ(model.state(0).name, "off");
  EXPECT_EQ(model.state(0).draw.value(), 0.0);
  EXPECT_EQ(model.state(1).name, "on");
  EXPECT_EQ(model.state(1).draw.value(), 3.96);
  EXPECT_EQ(model.activity(), 0u);
}

TEST(ComponentModelTest, IndexOfFindsAndThrows) {
  ComponentModel model{gprs_like_spec()};
  EXPECT_EQ(model.index_of("tx"), 3u);
  EXPECT_EQ(model.index_of("off"), 0u);
  EXPECT_THROW((void)model.index_of("warp"), std::out_of_range);
}

TEST(ComponentModelTest, SetActivityChecksBoundsAndClearsPlan) {
  ComponentModel model{gprs_like_spec()};
  const sim::SimTime t0 = sim::SimTime{} + sim::hours(1);
  model.set_plan(t0, {{2, sim::minutes(1)}});
  EXPECT_TRUE(model.has_plan());
  model.set_activity(1);
  EXPECT_FALSE(model.has_plan());
  EXPECT_EQ(model.activity(), 1u);
  EXPECT_THROW(model.set_activity(4), std::out_of_range);
}

TEST(ComponentModelTest, PlanSegmentsAreHalfOpen) {
  ComponentModel model{gprs_like_spec()};
  model.set_activity(1);
  const sim::SimTime t0 = sim::SimTime{} + sim::hours(1);
  model.set_plan(t0, {{2, sim::seconds(30)}, {3, sim::seconds(90)}});

  // Before the anchor: the base activity governs.
  EXPECT_EQ(model.active_at(t0 - sim::seconds(1)), 1u);
  // [t0, t0+30s) -> registering, [t0+30s, t0+120s) -> tx, then base.
  EXPECT_EQ(model.active_at(t0), 2u);
  EXPECT_EQ(model.active_at(t0 + sim::seconds(29)), 2u);
  EXPECT_EQ(model.active_at(t0 + sim::seconds(30)), 3u);
  EXPECT_EQ(model.active_at(t0 + sim::seconds(119)), 3u);
  EXPECT_EQ(model.active_at(t0 + sim::seconds(120)), 1u);
}

TEST(ComponentModelTest, ZeroDwellSegmentsAreSkipped) {
  ComponentModel model{gprs_like_spec()};
  const sim::SimTime t0 = sim::SimTime{} + sim::hours(1);
  model.set_plan(t0, {{2, sim::Duration{}}, {3, sim::seconds(10)}});
  EXPECT_EQ(model.active_at(t0), 3u);
}

// attribute() must cover [from, to) exactly: no gaps, no overlap, honouring
// plan segments and the base activity either side of them.
TEST(ComponentModelTest, AttributeSplitsTheIntervalExactly) {
  ComponentModel model{gprs_like_spec()};
  model.set_activity(1);
  const sim::SimTime t0 = sim::SimTime{} + sim::hours(1);
  model.set_plan(t0 + sim::seconds(10),
                 {{2, sim::seconds(20)}, {3, sim::seconds(15)}});

  std::vector<std::pair<std::size_t, std::int64_t>> spans;
  sim::SimTime cursor = t0;
  model.attribute(t0, t0 + sim::seconds(60),
                  [&](std::size_t state, sim::SimTime from, sim::SimTime to) {
                    EXPECT_EQ(from, cursor);  // contiguous, ordered
                    EXPECT_LT(from, to);
                    cursor = to;
                    spans.push_back({state, (to - from).millis()});
                  });
  EXPECT_EQ(cursor, t0 + sim::seconds(60));
  // idle gap 10s, registering 20s, tx 15s, idle remainder 15s.
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0], (std::pair<std::size_t, std::int64_t>{1, 10000}));
  EXPECT_EQ(spans[1], (std::pair<std::size_t, std::int64_t>{2, 20000}));
  EXPECT_EQ(spans[2], (std::pair<std::size_t, std::int64_t>{3, 15000}));
  EXPECT_EQ(spans[3], (std::pair<std::size_t, std::int64_t>{1, 15000}));
}

TEST(ComponentModelTest, PrunePlanAdvancesAnchor) {
  ComponentModel model{gprs_like_spec()};
  const sim::SimTime t0 = sim::SimTime{} + sim::hours(1);
  model.set_plan(t0, {{2, sim::seconds(30)}, {3, sim::seconds(30)}});
  model.prune_plan(t0 + sim::seconds(30));
  EXPECT_TRUE(model.has_plan());
  EXPECT_EQ(model.active_at(t0 + sim::seconds(31)), 3u);
  model.prune_plan(t0 + sim::seconds(60));
  EXPECT_FALSE(model.has_plan());
}

TEST(ComponentModelTest, DrawZeroCoefficientIsBitwiseNominal) {
  ComponentModel model{gprs_like_spec()};
  // coeff == 0: the nominal draw comes back untouched at any temperature.
  EXPECT_EQ(model.draw_at(3, util::Celsius{-40.0}).value(), 2.64);
  EXPECT_EQ(model.draw_at(3, util::Celsius{85.0}).value(), 2.64);
}

TEST(ComponentModelTest, DrawTemperatureScalingAndClamp) {
  ComponentSpec spec;
  spec.name = "heater";
  spec.states.push_back({"off", util::Watts{0.0}, 0.0});
  spec.states.push_back({"on", util::Watts{2.0}, 0.01});
  ComponentModel model{spec};
  // +10 C from reference: +10%.
  EXPECT_DOUBLE_EQ(model.draw_at(1, util::Celsius{35.0}).value(), 2.2);
  // -10 C: -10%.
  EXPECT_DOUBLE_EQ(model.draw_at(1, util::Celsius{15.0}).value(), 1.8);
  // Far below the zero crossing the factor clamps at zero, never negative.
  EXPECT_EQ(model.draw_at(1, util::Celsius{-200.0}).value(), 0.0);
}

TEST(ComponentModelTest, QuantumRoundsToNearestMicrojoule) {
  EXPECT_EQ(quantum(util::Watts{1.0}, 1.0), 1000000);
  EXPECT_EQ(quantum(util::Watts{0.0}, 3600.0), 0);
  EXPECT_EQ(quantum(util::Watts{1.5e-6}, 1.0), 2);  // round half away
}

TEST(ComponentModelTest, ChargeAccumulatesPerState) {
  ComponentModel model{gprs_like_spec()};
  model.charge(2, 1200, 30000);
  model.charge(3, 2640, 15000);
  model.charge(3, 100, 1000);
  EXPECT_EQ(model.energy_uj(2), 1200);
  EXPECT_EQ(model.energy_uj(3), 2740);
  EXPECT_EQ(model.total_uj(), 3940);
  EXPECT_EQ(model.active_ms(3), 16000);
  EXPECT_DOUBLE_EQ(model.active_seconds(2), 30.0);
}

TEST(ComponentModelTest, PersistRoundTripsLedgersAndPlan) {
  ComponentModel model{gprs_like_spec()};
  model.set_activity(1);
  const sim::SimTime t0 = sim::SimTime{} + sim::hours(2);
  model.set_plan(t0, {{2, sim::seconds(30)}, {3, sim::seconds(60)}});
  model.charge(1, 777, 1234);
  model.charge(3, 42, 10);
  model.set_state_draw(1, util::Watts{0.6});

  snapshot::Saver saver;
  model.persist(saver);

  ComponentModel restored{gprs_like_spec()};
  snapshot::Loader loader{saver.bytes()};
  restored.persist(loader);
  EXPECT_EQ(restored.activity(), 1u);
  EXPECT_EQ(restored.energy_uj(1), 777);
  EXPECT_EQ(restored.energy_uj(3), 42);
  EXPECT_EQ(restored.active_ms(1), 1234);
  EXPECT_EQ(restored.state(1).draw.value(), 0.6);
  EXPECT_TRUE(restored.has_plan());
  EXPECT_EQ(restored.active_at(t0 + sim::seconds(45)), 3u);
  EXPECT_EQ(restored.active_at(t0 + sim::seconds(95)), 1u);
}

TEST(ComponentModelTest, PersistRefusesMismatchedWiring) {
  ComponentModel model{gprs_like_spec()};
  snapshot::Saver saver;
  model.persist(saver);

  // Wrong name: the snapshot is for another component.
  ComponentModel wrong_name{switched_load("radio", util::Watts{1.0})};
  snapshot::Loader by_name{saver.bytes()};
  EXPECT_THROW(wrong_name.persist(by_name), snapshot::SnapshotError);

  // Right name, wrong state count: the wiring changed shape.
  ComponentModel wrong_shape{switched_load("gprs", util::Watts{1.0})};
  snapshot::Loader by_shape{saver.bytes()};
  EXPECT_THROW(wrong_shape.persist(by_shape), snapshot::SnapshotError);
}

}  // namespace
}  // namespace gw::energy
