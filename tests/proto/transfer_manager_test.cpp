#include "proto/transfer_manager.h"

#include <gtest/gtest.h>

#include "env/environment.h"

namespace gw::proto {
namespace {

using namespace util::literals;

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::Environment environment{1};
  power::PowerSystemConfig power_config;
  power::PowerSystem power{simulation, environment, power_config};
  hw::GprsConfig reliable_config;
  Fixture() {
    reliable_config.registration_success = 1.0;
    reliable_config.drop_per_minute = 0.0;
  }
  hw::GprsModem modem{simulation, power, util::Rng{5}, reliable_config};
};

TEST(TransferManager, QueueAccounting) {
  TransferManager manager;
  manager.enqueue("a", 165_KiB);
  manager.enqueue("b", 100_KiB);
  EXPECT_EQ(manager.queued_files(), 2u);
  EXPECT_EQ(manager.queued_bytes(), 265_KiB);
}

TEST(TransferManager, DrainsQueueWithinWindow) {
  Fixture f;
  f.modem.power_on();
  TransferManager manager;
  for (int i = 0; i < 5; ++i) {
    manager.enqueue("dgps_" + std::to_string(i), 165_KiB);
  }
  const auto report = manager.run_window(f.modem, sim::hours(2));
  EXPECT_EQ(report.files_completed, 5);
  EXPECT_TRUE(manager.empty());
  EXPECT_FALSE(report.window_exhausted);
  // 5 x ~300 s ≈ 28 min of window used.
  EXPECT_NEAR(report.elapsed.to_minutes(), 28.0, 5.0);
}

TEST(TransferManager, BacklogDrainsFileByFileOverDays) {
  // §VI: "the data will be processed file by file, and so over the course
  // of a few days the backlog will be cleared."
  Fixture f;
  f.modem.power_on();
  TransferManager manager;
  for (int i = 0; i < 60; ++i) {
    manager.enqueue("dgps_" + std::to_string(i), 165_KiB);
  }
  int days = 0;
  while (!manager.empty() && days < 10) {
    (void)manager.run_window(f.modem, sim::hours(2));
    ++days;
  }
  EXPECT_TRUE(manager.empty());
  EXPECT_GT(days, 1);   // too much for one window (60 x 5min ≈ 5h)
  EXPECT_LE(days, 4);
}

TEST(TransferManager, OversizedFileLivelocksWithoutChunkResume) {
  // §VI: a single file exceeding one window means "no progress could ever
  // be made".
  Fixture f;
  f.modem.power_on();
  TransferManager manager;  // chunk_resume off: deployed behaviour
  manager.enqueue("giant", util::mib(6.0));  // ~2.8 h at 5000 bps
  for (int day = 0; day < 5; ++day) {
    const auto report = manager.run_window(f.modem, sim::hours(2));
    EXPECT_EQ(report.files_completed, 0);
    EXPECT_TRUE(report.window_exhausted);
  }
  EXPECT_EQ(manager.queued_files(), 1u);
  EXPECT_EQ(manager.queue().front().sent.count(), 0);  // zero progress
}

TEST(TransferManager, ChunkResumeFixesTheLivelock) {
  Fixture f;
  f.modem.power_on();
  TransferManagerConfig config;
  config.chunk_resume = true;  // the obvious fix, swept in the bench
  TransferManager manager{config};
  manager.enqueue("giant", util::mib(6.0));
  int days = 0;
  while (!manager.empty() && days < 5) {
    (void)manager.run_window(f.modem, sim::hours(2));
    ++days;
  }
  EXPECT_TRUE(manager.empty());
  EXPECT_LE(days, 2);
}

TEST(TransferManager, RegistrationFailuresRetryThenGiveUp) {
  Fixture f;
  hw::GprsConfig dead_config;
  dead_config.registration_success = 0.0;
  hw::GprsModem dead{f.simulation, f.power, util::Rng{9}, dead_config};
  dead.power_on();
  TransferManager manager;
  manager.enqueue("data", 10_KiB);
  const auto report = manager.run_window(dead, sim::hours(2));
  EXPECT_EQ(report.files_completed, 0);
  EXPECT_EQ(report.failed_sessions, 3);  // initial + 2 retries
  EXPECT_EQ(manager.queued_files(), 1u);  // kept for tomorrow
}

TEST(TransferManager, PriorityOrderingJumpsBacklog) {
  // §VII-adjacent extension: today's science beats last month's GPS files.
  Fixture f;
  f.modem.power_on();
  proto::TransferManagerConfig config;
  config.priority_ordering = true;
  proto::TransferManager manager{config};
  for (int i = 0; i < 100; ++i) {
    manager.enqueue("dgps_backlog_" + std::to_string(i), 165_KiB);
  }
  manager.enqueue("probes_today", 40_KiB, /*priority=*/1);
  EXPECT_EQ(manager.queue().front().name, "probes_today");
  // A short window: the probe file still gets out first.
  const auto report = manager.run_window(f.modem, sim::minutes(10));
  EXPECT_GE(report.files_completed, 1);
  bool probe_file_gone = true;
  for (const auto& file : manager.queue()) {
    if (file.name == "probes_today") probe_file_gone = false;
  }
  EXPECT_TRUE(probe_file_gone);
}

TEST(TransferManager, FifoByDefaultEvenWithPriorities) {
  proto::TransferManager manager;  // deployed behaviour
  manager.enqueue("old", 10_KiB);
  manager.enqueue("new", 10_KiB, /*priority=*/5);
  EXPECT_EQ(manager.queue().front().name, "old");
}

TEST(TransferManager, PriorityNeverPreemptsPartialProgress) {
  proto::TransferManagerConfig config;
  config.priority_ordering = true;
  config.chunk_resume = true;
  proto::TransferManager manager{config};
  manager.enqueue("half_done", 100_KiB);
  // Simulate partial progress by pushing priority traffic afterwards; the
  // half-transferred head must keep its slot (sent bytes would be wasted).
  // (Progress is internal; emulate via the public path: a window that
  // truncates.)
  Fixture f;
  f.modem.power_on();
  (void)manager.run_window(f.modem, sim::seconds(90));  // partial only
  ASSERT_GT(manager.queue().front().sent.count(), 0);
  manager.enqueue("urgent", 1_KiB, /*priority=*/9);
  EXPECT_EQ(manager.queue().front().name, "half_done");
  EXPECT_EQ(manager.queue()[1].name, "urgent");
}

TEST(TransferManager, BackoffSeparatesConsecutiveFailures) {
  // Capped exponential backoff: the k-th consecutive failure waits
  // min(base * 2^(k-1), cap) of window time before redialling.
  Fixture f;
  hw::GprsConfig dead_config;
  dead_config.registration_success = 0.0;
  hw::GprsModem dead{f.simulation, f.power, util::Rng{9}, dead_config};
  dead.power_on();
  TransferManagerConfig config;
  config.max_session_retries = 5;
  config.retry_backoff_base = sim::minutes(1);
  config.retry_backoff_cap = sim::minutes(4);
  TransferManager manager{config};
  manager.enqueue("data", 10_KiB);
  const auto report = manager.run_window(dead, sim::hours(2));
  EXPECT_EQ(report.failed_sessions, 6);  // initial + 5 retries
  // Backoffs after failures 1..5: 1 + 2 + 4 + 4 + 4 minutes (capped).
  EXPECT_EQ(report.backoff_spent, sim::minutes(15));
  EXPECT_EQ(report.elapsed,
            dead.config().registration_time * 6 + sim::minutes(15));
}

TEST(TransferManager, BackoffNeverExceedsTheWindow) {
  Fixture f;
  hw::GprsConfig dead_config;
  dead_config.registration_success = 0.0;
  hw::GprsModem dead{f.simulation, f.power, util::Rng{9}, dead_config};
  dead.power_on();
  TransferManagerConfig config;
  config.max_session_retries = 10;
  config.retry_backoff_base = sim::minutes(8);
  TransferManager manager{config};
  manager.enqueue("data", 10_KiB);
  const auto budget = sim::minutes(12);
  const auto report = manager.run_window(dead, budget);
  EXPECT_LE(report.elapsed, budget + dead.config().registration_time);
  EXPECT_TRUE(report.window_exhausted);
  EXPECT_EQ(manager.queued_files(), 1u);
}

TEST(TransferManager, SessionTimeoutCutsAWedgedSession) {
  // Regression for the wedge path: a hung SCP used to eat hang_duration
  // (24 h) and leave the 2-hour watchdog as the only backstop. With a
  // session timeout the window survives three wedges and moves on.
  Fixture f;
  hw::GprsConfig wedge_config;
  wedge_config.registration_success = 1.0;
  wedge_config.hang_per_session = 1.0;
  hw::GprsModem wedged{f.simulation, f.power, util::Rng{9}, wedge_config};
  wedged.power_on();
  TransferManagerConfig config;
  config.session_timeout = sim::minutes(10);
  TransferManager manager{config};
  manager.enqueue("data", 10_KiB);
  const auto report = manager.run_window(wedged, sim::hours(2));
  EXPECT_EQ(report.sessions_timed_out, 3);  // initial + 2 retries
  EXPECT_EQ(report.failed_sessions, 3);
  const auto per_session =
      wedged.config().registration_time + sim::minutes(10);
  EXPECT_EQ(report.elapsed, per_session * 3);
  EXPECT_LT(report.elapsed, sim::hours(1));  // not 3 x 24 h
}

TEST(TransferManager, AdmitPredicateFiltersLogOnlyUpload) {
  // Degraded mode's "log-only upload": science files stay queued while the
  // logfile (and nothing else) goes out.
  Fixture f;
  f.modem.power_on();
  TransferManager manager;
  manager.enqueue("dgps_0", 165_KiB);
  manager.enqueue("log_day12", 4_KiB);
  manager.enqueue("dgps_1", 165_KiB);
  const auto report = manager.run_window(
      f.modem, sim::hours(2), sim::kEpoch,
      [](const UploadFile& file) { return file.name.rfind("log_", 0) == 0; });
  EXPECT_EQ(report.files_completed, 1);
  EXPECT_EQ(manager.queued_files(), 2u);
  for (const auto& file : manager.queue()) {
    EXPECT_EQ(file.name.rfind("dgps_", 0), 0u);
  }
  // Without a predicate the same queue drains front-first as before.
  const auto rest = manager.run_window(f.modem, sim::hours(2));
  EXPECT_EQ(rest.files_completed, 2);
  EXPECT_TRUE(manager.empty());
}

TEST(TransferManager, EmptyQueueNoWork) {
  Fixture f;
  f.modem.power_on();
  TransferManager manager;
  const auto report = manager.run_window(f.modem, sim::hours(2));
  EXPECT_EQ(report.files_completed, 0);
  EXPECT_EQ(report.elapsed.millis(), 0);
}

TEST(TransferManager, TinyWindowExhaustsImmediately) {
  Fixture f;
  f.modem.power_on();
  TransferManager manager;
  manager.enqueue("data", 165_KiB);
  const auto report = manager.run_window(f.modem, sim::seconds(10));
  EXPECT_TRUE(report.window_exhausted);
  EXPECT_EQ(report.files_completed, 0);
}

}  // namespace
}  // namespace gw::proto
