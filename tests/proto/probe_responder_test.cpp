#include "proto/probe_responder.h"

#include <gtest/gtest.h>

namespace gw::proto {
namespace {

void fill(ProbeStore& store, std::uint32_t n) {
  for (std::uint32_t seq = 0; seq < n; ++seq) {
    ProbeReading reading;
    reading.probe_id = 21;
    reading.seq = seq;
    reading.conductivity_us = 1.0 + 0.01 * seq;
    store.add(reading);
  }
}

Frame decode_or_die(const std::vector<std::uint8_t>& wire) {
  auto decoded = decode_frame(wire);
  EXPECT_TRUE(decoded.ok());
  return decoded.value();
}

TEST(ProbeResponder, QueryStreamsEverythingPending) {
  ProbeStore store;
  fill(store, 50);
  ProbeResponder responder{store, 21};
  const auto query = decode_or_die(encode_query_pending(21));
  const auto frames = responder.handle(query);
  ASSERT_EQ(frames.size(), 50u);
  const auto first = decode_or_die(frames.front());
  EXPECT_EQ(first.type, FrameType::kReadingData);
  const auto parsed = parse_reading(first.payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().seq, 0u);
  // Streaming does NOT release anything (§V: only confirmation does).
  EXPECT_EQ(store.pending_count(), 50u);
}

TEST(ProbeResponder, IgnoresOtherProbesFrames) {
  ProbeStore store;
  fill(store, 5);
  ProbeResponder responder{store, 21};
  const auto query = decode_or_die(encode_query_pending(24));
  EXPECT_TRUE(responder.handle(query).empty());
}

TEST(ProbeResponder, ResendRequestReturnsExactReading) {
  ProbeStore store;
  fill(store, 10);
  ProbeResponder responder{store, 21};
  const auto request = decode_or_die(encode_resend_request(21, 7));
  const auto frames = responder.handle(request);
  ASSERT_EQ(frames.size(), 1u);
  const auto parsed =
      parse_reading(decode_or_die(frames.front()).payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().seq, 7u);
  EXPECT_DOUBLE_EQ(parsed.value().conductivity_us, 1.07);
}

TEST(ProbeResponder, ResendOfUnknownSeqIsSilence) {
  ProbeStore store;
  fill(store, 3);
  ProbeResponder responder{store, 21};
  const auto request = decode_or_die(encode_resend_request(21, 999));
  EXPECT_TRUE(responder.handle(request).empty());
}

TEST(ProbeResponder, ConfirmReleasesAndAcks) {
  ProbeStore store;
  fill(store, 10);
  ProbeResponder responder{store, 21};
  const std::vector<std::uint32_t> seqs = {1, 3, 5};
  const auto confirm_frames = encode_confirm(21, seqs);
  ASSERT_EQ(confirm_frames.size(), 1u);
  const auto responses =
      responder.handle(decode_or_die(confirm_frames.front()));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(decode_or_die(responses.front()).type, FrameType::kAck);
  EXPECT_EQ(store.pending_count(), 7u);
  EXPECT_EQ(store.find(1), nullptr);
  EXPECT_NE(store.find(0), nullptr);
}

TEST(ProbeResponder, LargeConfirmChunksAcrossFrames) {
  ProbeStore store;
  fill(store, 200);
  ProbeResponder responder{store, 21};
  std::vector<std::uint32_t> seqs;
  for (std::uint32_t s = 0; s < 150; ++s) seqs.push_back(s);
  const auto frames = encode_confirm(21, seqs);
  EXPECT_EQ(frames.size(), 3u);  // 56 + 56 + 38
  for (const auto& wire : frames) {
    (void)responder.handle(decode_or_die(wire));
  }
  EXPECT_EQ(store.pending_count(), 50u);
  EXPECT_EQ(responder.confirms_processed(), 3u);
}

TEST(ProbeResponder, FullDialogueEndToEnd) {
  // Query -> stream -> (receiver misses some) -> resend -> confirm -> empty.
  ProbeStore store;
  fill(store, 100);
  ProbeResponder responder{store, 21};

  std::set<std::uint32_t> received;
  const auto stream =
      responder.handle(decode_or_die(encode_query_pending(21)));
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (i % 7 == 3) continue;  // "lost" frames
    const auto parsed =
        parse_reading(decode_or_die(stream[i]).payload);
    ASSERT_TRUE(parsed.ok());
    received.insert(parsed.value().seq);
  }
  // Re-request the gaps.
  for (std::uint32_t seq = 0; seq < 100; ++seq) {
    if (received.contains(seq)) continue;
    const auto frames =
        responder.handle(decode_or_die(encode_resend_request(21, seq)));
    ASSERT_EQ(frames.size(), 1u);
    received.insert(
        parse_reading(decode_or_die(frames.front()).payload).value().seq);
  }
  EXPECT_EQ(received.size(), 100u);
  // Confirm everything.
  std::vector<std::uint32_t> all(received.begin(), received.end());
  for (const auto& wire : encode_confirm(21, all)) {
    (void)responder.handle(decode_or_die(wire));
  }
  EXPECT_TRUE(store.empty());
}

}  // namespace
}  // namespace gw::proto
