#include "proto/bulk_transfer.h"

#include <gtest/gtest.h>

namespace gw::proto {
namespace {

struct Fixture {
  env::TemperatureModel temperature{env::TemperatureConfig{}, util::Rng{1}};
  env::MeltModel melt{env::MeltConfig{}, util::Rng{2}};
  ProbeLink link{melt, temperature, util::Rng{3}};
  ProbeStore store;

  void fill(std::size_t n) {
    for (std::uint32_t seq = 0; seq < n; ++seq) {
      ProbeReading reading;
      reading.probe_id = 21;
      reading.seq = seq;
      store.add(reading);
    }
  }
};

// Summer noon: the paper's hostile season (~13% loss).
const sim::SimTime kSummer = sim::at_midnight(2009, 7, 20) + sim::hours(12);
// Deep winter: dry ice, ~2% loss.
const sim::SimTime kWinter = sim::at_midnight(2009, 2, 1) + sim::hours(12);

TEST(NackBulkTransfer, DeliversEverythingInWinter) {
  Fixture f;
  f.fill(200);
  NackBulkTransfer protocol{f.link};
  const auto stats = protocol.run(f.store, kWinter, sim::hours(2));
  EXPECT_EQ(stats.offered, 200u);
  EXPECT_EQ(stats.delivered, 200u);
  EXPECT_EQ(stats.still_missing, 0u);
  EXPECT_TRUE(f.store.empty());
  EXPECT_FALSE(stats.aborted);
}

TEST(NackBulkTransfer, SummerStreamLosesRoughlyPaperFraction) {
  Fixture f;
  // Advance the melt model into summer first (forward-only).
  (void)f.link.loss_probability(kWinter);
  f.fill(3000);
  NackBulkTransfer protocol{f.link};
  const auto stats = protocol.run(f.store, kSummer, sim::hours(12));
  // §V: "With 3000 readings being sent in the summer ... 400 missed packets
  // were common."
  EXPECT_NEAR(double(stats.missing_after_stream), 400.0, 110.0);
  // Retry rounds then recover nearly everything.
  EXPECT_GT(stats.delivered, 2900u);
}

TEST(NackBulkTransfer, LegacyFirmwareAbortsOnLargeMissList) {
  Fixture f;
  (void)f.link.loss_probability(kWinter);
  f.fill(3000);
  NackConfig legacy;
  legacy.legacy_individual_limit = 100;  // tested regime only (§V)
  legacy.rerequest_all_ratio = 0.5;
  NackBulkTransfer protocol{f.link, legacy};
  const auto stats = protocol.run(f.store, kSummer, sim::hours(12));
  EXPECT_TRUE(stats.aborted);
  // Streamed data is still confirmed; the rest stays pending for tomorrow.
  EXPECT_GT(stats.delivered, 2000u);
  EXPECT_GT(stats.still_missing, 0u);
  EXPECT_EQ(f.store.pending_count(), stats.still_missing);
}

TEST(NackBulkTransfer, MultiDaySessionsEventuallyDrain) {
  // §V: "many missing readings were obtained in subsequent days."
  Fixture f;
  (void)f.link.loss_probability(kWinter);
  f.fill(3000);
  NackConfig legacy;
  legacy.legacy_individual_limit = 100;
  NackBulkTransfer protocol{f.link, legacy};
  int days_needed = 0;
  for (int day = 0; day < 10 && !f.store.empty(); ++day) {
    (void)protocol.run(f.store, kSummer + sim::days(day), sim::hours(2));
    ++days_needed;
  }
  EXPECT_TRUE(f.store.empty());
  EXPECT_GT(days_needed, 1);  // could not finish in one window
  EXPECT_LE(days_needed, 6);
}

TEST(NackBulkTransfer, RerequestAllWhenMissingDominates) {
  env::TemperatureModel temperature{env::TemperatureConfig{}, util::Rng{1}};
  env::MeltModel melt{env::MeltConfig{}, util::Rng{2}};
  ProbeLinkConfig terrible;
  terrible.link_quality_factor = 30.0;  // ~60% summer loss
  ProbeLink link{melt, temperature, util::Rng{3}, terrible};
  (void)link.loss_probability(kWinter);
  ProbeStore store;
  for (std::uint32_t seq = 0; seq < 300; ++seq) {
    ProbeReading reading;
    reading.seq = seq;
    store.add(reading);
  }
  NackBulkTransfer protocol{link};
  const auto stats = protocol.run(store, kSummer, sim::hours(4));
  EXPECT_GT(stats.rerequest_all_rounds, 0);
}

TEST(NackBulkTransfer, RespectsBudget) {
  Fixture f;
  f.fill(3000);
  NackBulkTransfer protocol{f.link};
  const auto stats = protocol.run(f.store, kWinter, sim::minutes(5));
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_LT(stats.delivered, 3000u);
  // Airtime never wildly exceeds the budget (one frame of overshoot max).
  EXPECT_LT(stats.airtime.to_minutes(), 5.2);
}

TEST(NackBulkTransfer, EmptyStoreIsFreeNoop) {
  Fixture f;
  NackBulkTransfer protocol{f.link};
  const auto stats = protocol.run(f.store, kWinter, sim::hours(2));
  EXPECT_EQ(stats.offered, 0u);
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.data_packets, 0u);
}

TEST(StopAndWait, DeliversInWinterButCostsMorePackets) {
  Fixture nack_fixture;
  nack_fixture.fill(500);
  NackBulkTransfer nack{nack_fixture.link};
  const auto nack_stats =
      nack.run(nack_fixture.store, kWinter, sim::hours(4));

  Fixture saw_fixture;
  saw_fixture.fill(500);
  StopAndWaitTransfer saw{saw_fixture.link};
  const auto saw_stats = saw.run(saw_fixture.store, kWinter, sim::hours(4));

  EXPECT_EQ(nack_stats.delivered, 500u);
  EXPECT_GT(saw_stats.delivered, 490u);
  // The headline §V claim: avoiding acknowledge packets saves airtime.
  EXPECT_GT(saw_stats.control_packets, nack_stats.control_packets * 5);
  EXPECT_GT(saw_stats.airtime.millis(), nack_stats.airtime.millis());
}

TEST(StopAndWait, RespectsBudget) {
  Fixture f;
  f.fill(3000);
  StopAndWaitTransfer saw{f.link};
  const auto stats = saw.run(f.store, kWinter, sim::minutes(5));
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_LT(stats.delivered, 3000u);
}

TEST(TransferProtocols, DeterministicAcrossRuns) {
  Fixture a;
  a.fill(300);
  Fixture b;
  b.fill(300);
  NackBulkTransfer pa{a.link};
  NackBulkTransfer pb{b.link};
  const auto sa = pa.run(a.store, kSummer, sim::hours(2));
  const auto sb = pb.run(b.store, kSummer, sim::hours(2));
  EXPECT_EQ(sa.delivered, sb.delivered);
  EXPECT_EQ(sa.data_packets, sb.data_packets);
  EXPECT_EQ(sa.airtime.millis(), sb.airtime.millis());
}

}  // namespace
}  // namespace gw::proto
