// Property sweeps over the bulk-transfer protocols across the loss range.
#include <gtest/gtest.h>

#include "proto/bulk_transfer.h"

namespace gw::proto {
namespace {

// A link with a pinned, season-independent loss rate (via quality factor
// against the winter floor).
struct PinnedLink {
  env::TemperatureModel temperature{env::TemperatureConfig{}, util::Rng{1}};
  env::MeltModel melt;
  ProbeLink link;

  explicit PinnedLink(double loss, std::uint64_t seed = 3)
      : melt(pin_config(), util::Rng{2}),
        link(melt, temperature, util::Rng{seed},
             ProbeLinkConfig{.link_quality_factor = loss / 0.02}) {}

  static env::MeltConfig pin_config() {
    env::MeltConfig config;
    config.winter_packet_loss = 0.02;
    config.summer_packet_loss = 0.02;  // flat: quality factor sets loss
    return config;
  }
};

void fill(ProbeStore& store, std::size_t n) {
  for (std::uint32_t seq = 0; seq < n; ++seq) {
    ProbeReading reading;
    reading.probe_id = 21;
    reading.seq = seq;
    store.add(reading);
  }
}

const sim::SimTime kWhen = sim::at_midnight(2009, 2, 1) + sim::hours(12);

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, NackDeliversEverythingWithEnoughBudget) {
  PinnedLink rig{GetParam()};
  ProbeStore store;
  fill(store, 500);
  NackBulkTransfer protocol{rig.link};
  // Multi-round within one generous window.
  NackConfig config;
  config.max_rounds = 12;
  NackBulkTransfer generous{rig.link, config};
  const auto stats = generous.run(store, kWhen, sim::hours(24));
  EXPECT_EQ(stats.delivered + stats.still_missing, stats.offered);
  EXPECT_GE(stats.delivered, std::size_t(480));  // ≥96 % in one session
}

TEST_P(LossSweep, ConservationAlwaysHolds) {
  PinnedLink rig{GetParam()};
  ProbeStore store;
  fill(store, 300);
  NackBulkTransfer protocol{rig.link};
  const auto stats = protocol.run(store, kWhen, sim::minutes(10));
  EXPECT_EQ(stats.delivered + stats.still_missing, stats.offered);
  EXPECT_EQ(store.pending_count(), stats.still_missing);
  EXPECT_EQ(stats.delivered_readings.size(), stats.delivered);
}

TEST_P(LossSweep, StreamMissesScaleWithLoss) {
  const double loss = GetParam();
  PinnedLink rig{loss};
  ProbeStore store;
  fill(store, 2000);
  NackBulkTransfer protocol{rig.link};
  const auto stats = protocol.run(store, kWhen, sim::hours(12));
  EXPECT_NEAR(double(stats.missing_after_stream), 2000.0 * loss,
              3.5 * std::sqrt(2000.0 * loss * (1.0 - loss)) + 2.0);
}

TEST_P(LossSweep, NackNeverCostsMoreControlPacketsThanStopAndWait) {
  const double loss = GetParam();
  PinnedLink nack_rig{loss, 7};
  ProbeStore nack_store;
  fill(nack_store, 400);
  NackBulkTransfer nack{nack_rig.link};
  const auto nack_stats = nack.run(nack_store, kWhen, sim::hours(12));

  PinnedLink saw_rig{loss, 7};
  ProbeStore saw_store;
  fill(saw_store, 400);
  StopAndWaitTransfer saw{saw_rig.link};
  const auto saw_stats = saw.run(saw_store, kWhen, sim::hours(12));

  EXPECT_LT(nack_stats.control_packets, saw_stats.control_packets);
  EXPECT_LE(nack_stats.airtime.millis(), saw_stats.airtime.millis());
}

INSTANTIATE_TEST_SUITE_P(LossRange, LossSweep,
                         ::testing::Values(0.005, 0.02, 0.05, 0.133, 0.25,
                                           0.4));

}  // namespace
}  // namespace gw::proto
