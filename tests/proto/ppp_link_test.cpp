#include "proto/ppp_link.h"

#include <gtest/gtest.h>

#include "env/environment.h"

namespace gw::proto {
namespace {

using namespace util::literals;

struct Fixture {
  sim::Simulation simulation{sim::at_midnight(2009, 9, 22)};
  env::EnvironmentConfig lab_config;
  Fixture() { lab_config.radio_site = env::RadioSite::kLab; }
  env::Environment environment{lab_config, 1};
  power::PowerSystemConfig config;
  power::PowerSystem power{simulation, environment, config};
  hw::RadioModem modem{simulation, power, environment.interference()};
};

TEST(PppLink, RequiresPoweredModem) {
  Fixture f;
  PppLink link{f.modem, util::Rng{1}};
  const auto outcome = link.transfer(f.simulation.now(), 100_KiB);
  EXPECT_FALSE(outcome.connected);
  EXPECT_EQ(outcome.transferred.count(), 0);
}

TEST(PppLink, SmallTransfersUsuallyComplete) {
  Fixture f;
  f.modem.power_on();
  PppLink link{f.modem, util::Rng{2}};
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    const auto outcome = link.transfer(
        f.simulation.now() + sim::hours(3),  // night: low interference
        10_KiB);
    if (outcome.reason == PppDisconnectReason::kCompleted) ++completed;
  }
  EXPECT_GT(completed, 85);
}

TEST(PppLink, DisconnectReasonsDistinguished) {
  // §II: the reason matters — interference means stay powered and retry,
  // completion means power off now. Both reasons must be observable.
  Fixture f;
  f.modem.power_on();
  PppLink link{f.modem, util::Rng{3}};
  bool saw_completed = false;
  bool saw_interference = false;
  for (int i = 0; i < 300 && !(saw_completed && saw_interference); ++i) {
    // Noon at the lab site: heavy interference on long transfers.
    const auto outcome = link.transfer(
        f.simulation.now() + sim::hours(12), 2_MiB);
    if (outcome.reason == PppDisconnectReason::kCompleted) {
      saw_completed = true;
    }
    if (outcome.reason == PppDisconnectReason::kInterference) {
      saw_interference = true;
    }
  }
  EXPECT_TRUE(saw_completed);
  EXPECT_TRUE(saw_interference);
}

TEST(PppLink, InterferenceLeavesPartialTransfer) {
  Fixture f;
  f.modem.power_on();
  PppLink link{f.modem, util::Rng{4}};
  for (int i = 0; i < 200; ++i) {
    const auto outcome =
        link.transfer(f.simulation.now() + sim::hours(12), 2_MiB);
    if (outcome.reason == PppDisconnectReason::kInterference) {
      EXPECT_GT(outcome.transferred.count(), 0);
      EXPECT_LT(outcome.transferred, 2_MiB);
      return;
    }
  }
  FAIL() << "no interference drop observed in 200 noon transfers";
}

TEST(PppLink, DialFailuresCounted) {
  Fixture f;
  f.modem.power_on();
  PppConfig config;
  config.dial_success = 0.0;
  PppLink link{f.modem, util::Rng{5}, config};
  const auto outcome = link.transfer(f.simulation.now(), 1_KiB);
  EXPECT_FALSE(outcome.connected);
  EXPECT_EQ(outcome.reason, PppDisconnectReason::kDialFailed);
  EXPECT_EQ(link.dial_failures(), 3);  // max_reconnect_attempts
  // Three dial attempts' worth of time was still burned.
  EXPECT_EQ(outcome.elapsed, sim::seconds(60));
}

TEST(PppLink, ZeroPayloadCompletesAfterDial) {
  Fixture f;
  f.modem.power_on();
  PppConfig config;
  config.dial_success = 1.0;
  PppLink link{f.modem, util::Rng{6}, config};
  const auto outcome = link.transfer(f.simulation.now(), 0_B);
  EXPECT_EQ(outcome.reason, PppDisconnectReason::kCompleted);
  EXPECT_EQ(outcome.elapsed, sim::seconds(20));
}

}  // namespace
}  // namespace gw::proto
