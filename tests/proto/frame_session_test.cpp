// Frame-level session vs the abstract protocol model: the two
// implementations of §V must agree, statistically, on what matters.
#include <gtest/gtest.h>

#include "proto/frame_session.h"

namespace gw::proto {
namespace {

struct Rig {
  env::TemperatureModel temperature{env::TemperatureConfig{}, util::Rng{1}};
  env::MeltModel melt{env::MeltConfig{}, util::Rng{2}};

  void to_summer(ProbeLink& link) {
    (void)link.loss_probability(sim::at_midnight(2009, 2, 1));
    (void)link.loss_probability(sim::at_midnight(2009, 7, 20));
  }
};

void fill(ProbeStore& store, std::uint32_t n) {
  for (std::uint32_t seq = 0; seq < n; ++seq) {
    ProbeReading reading;
    reading.probe_id = 21;
    reading.seq = seq;
    reading.conductivity_us = 1.0;
    store.add(reading);
  }
}

const sim::SimTime kWinterNoon = sim::at_midnight(2009, 2, 1) + sim::hours(12);
const sim::SimTime kSummerNoon = sim::at_midnight(2009, 7, 20) + sim::hours(12);

TEST(FrameSession, WinterSessionDeliversEverything) {
  Rig rig;
  ProbeLink link{rig.melt, rig.temperature, util::Rng{3}};
  ProbeStore store;
  fill(store, 300);
  ProbeResponder responder{store, 21};
  FrameLevelTransfer session{link, util::Rng{4}};
  const auto stats = session.run(responder, store, 21, kWinterNoon,
                                 sim::hours(4));
  EXPECT_EQ(stats.offered, 300u);
  EXPECT_EQ(stats.delivered, 300u);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(stats.delivered_readings.size(), 300u);
}

TEST(FrameSession, AgreesWithAbstractModelOnSummerFetch) {
  // Same 3000-reading summer fetch through both implementations; shapes
  // must match within sampling noise.
  Rig rig_a;
  ProbeLink link_a{rig_a.melt, rig_a.temperature, util::Rng{3}};
  rig_a.to_summer(link_a);
  ProbeStore store_a;
  fill(store_a, 3000);
  NackBulkTransfer abstract{link_a};
  const auto model = abstract.run(store_a, kSummerNoon, sim::hours(12));

  Rig rig_b;
  ProbeLink link_b{rig_b.melt, rig_b.temperature, util::Rng{3}};
  rig_b.to_summer(link_b);
  ProbeStore store_b;
  fill(store_b, 3000);
  ProbeResponder responder{store_b, 21};
  FrameSessionConfig config;
  config.corruption_probability = 0.0;  // isolate loss (the model has none)
  FrameLevelTransfer frames{link_b, util::Rng{4}, config};
  const auto real = frames.run(responder, store_b, 21, kSummerNoon,
                               sim::hours(12));

  // Both see the paper's ~400 stream misses.
  EXPECT_NEAR(double(real.missing_after_stream),
              double(model.missing_after_stream), 120.0);
  // Delivery within a fraction of a percent of each other.
  EXPECT_NEAR(double(real.delivered), double(model.delivered), 30.0);
  // Airtime within 10% (the frame path re-queries per replay round).
  EXPECT_NEAR(real.airtime.to_minutes(), model.airtime.to_minutes(),
              0.15 * model.airtime.to_minutes());
}

TEST(FrameSession, CorruptionInflatesMissList) {
  Rig clean_rig;
  ProbeLink clean_link{clean_rig.melt, clean_rig.temperature, util::Rng{3}};
  ProbeStore clean_store;
  fill(clean_store, 2000);
  ProbeResponder clean_responder{clean_store, 21};
  FrameSessionConfig clean_config;
  clean_config.corruption_probability = 0.0;
  FrameLevelTransfer clean{clean_link, util::Rng{4}, clean_config};
  const auto clean_stats =
      clean.run(clean_responder, clean_store, 21, kWinterNoon,
                sim::hours(8));

  Rig dirty_rig;
  ProbeLink dirty_link{dirty_rig.melt, dirty_rig.temperature, util::Rng{3}};
  ProbeStore dirty_store;
  fill(dirty_store, 2000);
  ProbeResponder dirty_responder{dirty_store, 21};
  FrameSessionConfig dirty_config;
  dirty_config.corruption_probability = 0.05;
  FrameLevelTransfer dirty{dirty_link, util::Rng{4}, dirty_config};
  const auto dirty_stats =
      dirty.run(dirty_responder, dirty_store, 21, kWinterNoon,
                sim::hours(8));

  EXPECT_GT(dirty_stats.missing_after_stream,
            clean_stats.missing_after_stream + 40);
  // The retry rounds still recover (CRC-broken = missing, §V).
  EXPECT_GT(dirty_stats.delivered, 1950u);
}

TEST(FrameSession, BudgetRespected) {
  Rig rig;
  ProbeLink link{rig.melt, rig.temperature, util::Rng{3}};
  ProbeStore store;
  fill(store, 3000);
  ProbeResponder responder{store, 21};
  FrameLevelTransfer session{link, util::Rng{4}};
  const auto stats =
      session.run(responder, store, 21, kWinterNoon, sim::minutes(3));
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_LT(stats.delivered, 3000u);
  EXPECT_LT(stats.airtime.to_minutes(), 3.2);
  // Unconfirmed readings stay pending (task-completion semantics hold at
  // the frame level too).
  EXPECT_EQ(store.pending_count(), stats.offered - stats.delivered);
}

}  // namespace
}  // namespace gw::proto
