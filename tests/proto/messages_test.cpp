#include "proto/messages.h"

#include <gtest/gtest.h>

#include "util/crc32.h"

namespace gw::proto {
namespace {

TEST(Form, EncodeDecodeRoundTrip) {
  Form form;
  form.set("msg", "state_report");
  form.set("station", "base");
  form.set_int("state", 2);
  const std::string wire = form.encode();
  const auto decoded = Form::decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().get("station").value_or(""), "base");
  EXPECT_EQ(decoded.value().get_int("state").value_or(-1), 2);
  EXPECT_EQ(decoded.value().size(), 3u);
}

TEST(Form, EmptyFormRoundTrips) {
  Form form;
  const auto decoded = Form::decode(form.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), 0u);
}

TEST(Form, CrcDetectsCorruption) {
  Form form;
  form.set("station", "base");
  form.set_int("state", 3);
  std::string wire = form.encode();
  wire[8] ^= 0x01;  // flip a bit in the body
  EXPECT_FALSE(Form::decode(wire).ok());
}

TEST(Form, MissingCrcRejected) {
  EXPECT_FALSE(Form::decode("station=base&state=3").ok());
}

TEST(Form, MalformedFieldRejected) {
  // Body "stationbase" has no '=': re-encode with valid CRC to isolate the
  // field parser.
  const std::string body = "stationbase";
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", util::crc32(body));
  EXPECT_FALSE(Form::decode(body + "#" + crc).ok());
}

TEST(Form, MissingKeyAndBadIntAreNullopt) {
  Form form;
  form.set("note", "not-a-number");
  const auto decoded = Form::decode(form.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().get("absent").has_value());
  EXPECT_FALSE(decoded.value().get_int("note").has_value());
}

TEST(StateReportMsg, RoundTrip) {
  StateReport report;
  report.station = "reference";
  report.state = power::PowerState::kState1;
  report.day_ms = 1253620800000;
  const auto decoded = StateReport::decode(report.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().station, "reference");
  EXPECT_EQ(decoded.value().state, power::PowerState::kState1);
  EXPECT_EQ(decoded.value().day_ms, 1253620800000);
}

TEST(StateReportMsg, WrongTypeRejected) {
  OverrideRequest request;
  request.station = "base";
  EXPECT_FALSE(StateReport::decode(request.encode()).ok());
}

TEST(OverrideMsgs, RoundTrip) {
  OverrideRequest request;
  request.station = "base";
  const auto decoded_request = OverrideRequest::decode(request.encode());
  ASSERT_TRUE(decoded_request.ok());
  EXPECT_EQ(decoded_request.value().station, "base");

  OverrideResponse response;
  response.has_override = true;
  response.state = power::PowerState::kState2;
  const auto decoded = OverrideResponse::decode(response.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().has_override);
  EXPECT_EQ(decoded.value().state, power::PowerState::kState2);
}

TEST(OverrideMsgs, NoOverrideCase) {
  OverrideResponse response;
  response.has_override = false;
  const auto decoded = OverrideResponse::decode(response.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().has_override);
}

TEST(WireSize, IncludesHttpOverhead) {
  StateReport report;
  report.station = "base";
  const auto size = wire_size(report.encode());
  EXPECT_GT(size.count(), 180);
  EXPECT_LT(size.count(), 500);
}

TEST(StateReportMsg, StateOutOfRangeClamps) {
  // A tampered wire with state=9 must clamp, not crash (from_int).
  Form form;
  form.set("msg", "state_report");
  form.set("station", "base");
  form.set_int("state", 9);
  form.set_int("rtc_ms", 0);
  const auto decoded = StateReport::decode(form.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().state, power::PowerState::kState3);
}

}  // namespace
}  // namespace gw::proto
