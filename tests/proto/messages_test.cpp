#include "proto/messages.h"

#include <gtest/gtest.h>

#include "util/crc32.h"

namespace gw::proto {
namespace {

TEST(Form, EncodeDecodeRoundTrip) {
  Form form;
  form.set("msg", "state_report");
  form.set("station", "base");
  form.set_int("state", 2);
  const std::string wire = form.encode();
  const auto decoded = Form::decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().get("station").value_or(""), "base");
  EXPECT_EQ(decoded.value().get_int("state").value_or(-1), 2);
  EXPECT_EQ(decoded.value().size(), 3u);
}

TEST(Form, EmptyFormRoundTrips) {
  Form form;
  const auto decoded = Form::decode(form.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), 0u);
}

TEST(Form, CrcDetectsCorruption) {
  Form form;
  form.set("station", "base");
  form.set_int("state", 3);
  std::string wire = form.encode();
  wire[8] ^= 0x01;  // flip a bit in the body
  EXPECT_FALSE(Form::decode(wire).ok());
}

TEST(Form, MissingCrcRejected) {
  EXPECT_FALSE(Form::decode("station=base&state=3").ok());
}

TEST(Form, MalformedFieldRejected) {
  // Body "stationbase" has no '=': re-encode with valid CRC to isolate the
  // field parser.
  const std::string body = "stationbase";
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", util::crc32(body));
  EXPECT_FALSE(Form::decode(body + "#" + crc).ok());
}

TEST(Form, MissingKeyAndBadIntAreNullopt) {
  Form form;
  form.set("note", "not-a-number");
  const auto decoded = Form::decode(form.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().get("absent").has_value());
  EXPECT_FALSE(decoded.value().get_int("note").has_value());
}

TEST(Form, ParseIntIsStrictFullString) {
  // Regression: get_int used std::stoll, which accepted "42xyz" (returned
  // 42), leading whitespace, and a '+' sign — a tampered-but-CRC-valid
  // value could half-parse into the ledger. The from_chars replacement
  // must consume the entire value or return nullopt.
  EXPECT_EQ(Form::parse_int("42").value_or(-1), 42);
  EXPECT_EQ(Form::parse_int("-7").value_or(1), -7);
  EXPECT_EQ(Form::parse_int("0").value_or(-1), 0);
  EXPECT_EQ(Form::parse_int("9223372036854775807").value_or(-1),
            9223372036854775807LL);
  EXPECT_FALSE(Form::parse_int("42xyz").has_value());
  EXPECT_FALSE(Form::parse_int(" 42").has_value());
  EXPECT_FALSE(Form::parse_int("42 ").has_value());
  EXPECT_FALSE(Form::parse_int("+42").has_value());
  EXPECT_FALSE(Form::parse_int("4.2").has_value());
  EXPECT_FALSE(Form::parse_int("0x10").has_value());
  EXPECT_FALSE(Form::parse_int("").has_value());
  EXPECT_FALSE(Form::parse_int("-").has_value());
  // Overflow is a parse failure, not UB or a throw.
  EXPECT_FALSE(Form::parse_int("9223372036854775808").has_value());
}

TEST(Form, GetIntRefusesTrailingGarbage) {
  Form form;
  form.set("state", "2xyz");
  form.set("clean", "2");
  const auto decoded = Form::decode(form.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().get_int("state").has_value());
  EXPECT_EQ(decoded.value().get_int("clean").value_or(-1), 2);
}

TEST(StateReportMsg, HalfNumericFieldRejected) {
  // End-to-end form of the strict-parse regression: the wire is CRC-valid
  // but rtc_ms carries trailing garbage; the typed decode must refuse it.
  Form form;
  form.set("msg", "state_report");
  form.set("station", "base");
  form.set("state", "2");
  form.set("rtc_ms", "1000junk");
  EXPECT_FALSE(StateReport::decode(form.encode()).ok());
}

TEST(StateReportMsg, RoundTrip) {
  StateReport report;
  report.station = "reference";
  report.state = power::PowerState::kState1;
  report.day_ms = 1253620800000;
  const auto decoded = StateReport::decode(report.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().station, "reference");
  EXPECT_EQ(decoded.value().state, power::PowerState::kState1);
  EXPECT_EQ(decoded.value().day_ms, 1253620800000);
}

TEST(StateReportMsg, WrongTypeRejected) {
  OverrideRequest request;
  request.station = "base";
  EXPECT_FALSE(StateReport::decode(request.encode()).ok());
}

TEST(OverrideMsgs, RoundTrip) {
  OverrideRequest request;
  request.station = "base";
  const auto decoded_request = OverrideRequest::decode(request.encode());
  ASSERT_TRUE(decoded_request.ok());
  EXPECT_EQ(decoded_request.value().station, "base");

  OverrideResponse response;
  response.has_override = true;
  response.state = power::PowerState::kState2;
  const auto decoded = OverrideResponse::decode(response.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().has_override);
  EXPECT_EQ(decoded.value().state, power::PowerState::kState2);
}

TEST(OverrideMsgs, NoOverrideCase) {
  OverrideResponse response;
  response.has_override = false;
  const auto decoded = OverrideResponse::decode(response.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().has_override);
}

TEST(WireSize, IncludesHttpOverhead) {
  StateReport report;
  report.station = "base";
  const auto size = wire_size(report.encode());
  EXPECT_GT(size.count(), 180);
  EXPECT_LT(size.count(), 500);
}

TEST(StateReportMsg, StateOutOfRangeClamps) {
  // A tampered wire with state=9 must clamp, not crash (from_int).
  Form form;
  form.set("msg", "state_report");
  form.set("station", "base");
  form.set_int("state", 9);
  form.set_int("rtc_ms", 0);
  const auto decoded = StateReport::decode(form.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().state, power::PowerState::kState3);
}

}  // namespace
}  // namespace gw::proto
