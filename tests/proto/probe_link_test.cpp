#include "proto/probe_link.h"

#include <gtest/gtest.h>

#include "proto/reading.h"

namespace gw::proto {
namespace {

struct Fixture {
  env::TemperatureModel temperature{env::TemperatureConfig{}, util::Rng{1}};
  env::MeltModel melt{env::MeltConfig{}, util::Rng{2}};
  ProbeLink link{melt, temperature, util::Rng{3}};
};

TEST(ProbeLink, WinterLossNearTwoPercent) {
  Fixture f;
  const double loss = f.link.loss_probability(sim::at_midnight(2009, 2, 1));
  EXPECT_NEAR(loss, 0.02, 0.015);
}

TEST(ProbeLink, SummerLossNearPaperRate) {
  Fixture f;
  // Walk chronologically into summer (forward-only melt model).
  (void)f.link.loss_probability(sim::at_midnight(2009, 2, 1));
  const double loss = f.link.loss_probability(sim::at_midnight(2009, 7, 20));
  // §V: ~400/3000 ≈ 13% on the weakest summer link.
  EXPECT_NEAR(loss, 0.133, 0.03);
}

TEST(ProbeLink, QualityFactorScalesLoss) {
  env::TemperatureModel temperature{env::TemperatureConfig{}, util::Rng{1}};
  env::MeltModel melt{env::MeltConfig{}, util::Rng{2}};
  ProbeLinkConfig weak;
  weak.link_quality_factor = 2.0;
  ProbeLink nominal{melt, temperature, util::Rng{3}};
  ProbeLink degraded{melt, temperature, util::Rng{3}, weak};
  const auto t = sim::at_midnight(2009, 2, 1);
  EXPECT_NEAR(degraded.loss_probability(t),
              2.0 * nominal.loss_probability(t), 1e-12);
}

TEST(ProbeLink, LossCappedBelowOne) {
  env::TemperatureModel temperature{env::TemperatureConfig{}, util::Rng{1}};
  env::MeltModel melt{env::MeltConfig{}, util::Rng{2}};
  ProbeLinkConfig broken;
  broken.link_quality_factor = 1000.0;
  ProbeLink link{melt, temperature, util::Rng{3}, broken};
  EXPECT_LE(link.loss_probability(sim::at_midnight(2009, 7, 1)), 0.95);
}

TEST(ProbeLink, AirtimeMatchesRate) {
  Fixture f;
  // 64-byte frame at 2400 bps = 213 ms + 40 ms turnaround.
  const auto airtime = f.link.airtime(kReadingWireSize);
  EXPECT_NEAR(airtime.to_seconds(), 64.0 * 8.0 / 2400.0 + 0.04, 0.002);
}

TEST(ProbeLink, LossCountersTrack) {
  Fixture f;
  const auto t = sim::at_midnight(2009, 7, 20);
  int survived = 0;
  for (int i = 0; i < 3000; ++i) {
    if (f.link.packet_survives(t)) ++survived;
  }
  EXPECT_EQ(f.link.packets_attempted(), 3000u);
  EXPECT_EQ(f.link.packets_lost(), 3000u - std::uint64_t(survived));
  // Summer: roughly 400 of 3000 lost (§V).
  EXPECT_NEAR(double(f.link.packets_lost()), 400.0, 90.0);
}

}  // namespace
}  // namespace gw::proto
