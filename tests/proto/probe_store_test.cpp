#include "proto/probe_store.h"

#include <gtest/gtest.h>

namespace gw::proto {
namespace {

ProbeReading make_reading(std::uint32_t seq) {
  ProbeReading reading;
  reading.probe_id = 21;
  reading.seq = seq;
  reading.conductivity_us = 1.5;
  return reading;
}

TEST(ProbeStore, AddAndPending) {
  ProbeStore store;
  EXPECT_TRUE(store.empty());
  store.add(make_reading(1));
  store.add(make_reading(2));
  EXPECT_EQ(store.pending_count(), 2u);
  EXPECT_EQ(store.pending().front().seq, 1u);
}

TEST(ProbeStore, FindBySeq) {
  ProbeStore store;
  store.add(make_reading(7));
  ASSERT_NE(store.find(7), nullptr);
  EXPECT_EQ(store.find(7)->seq, 7u);
  EXPECT_EQ(store.find(8), nullptr);
}

TEST(ProbeStore, ConfirmReleasesOnlyNamedReadings) {
  ProbeStore store;
  for (std::uint32_t seq = 0; seq < 10; ++seq) store.add(make_reading(seq));
  const std::size_t released = store.confirm_delivered({1, 3, 5});
  EXPECT_EQ(released, 3u);
  EXPECT_EQ(store.pending_count(), 7u);
  EXPECT_EQ(store.find(1), nullptr);
  EXPECT_NE(store.find(0), nullptr);
  EXPECT_EQ(store.delivered_total(), 3u);
}

TEST(ProbeStore, ConfirmUnknownSeqsIsNoOp) {
  ProbeStore store;
  store.add(make_reading(1));
  EXPECT_EQ(store.confirm_delivered({99}), 0u);
  EXPECT_EQ(store.pending_count(), 1u);
}

TEST(ProbeStore, TaskIncompleteSemantics) {
  // §V: a failed session leaves everything unconfirmed pending for the next
  // day — nothing is lost by a truncated fetch.
  ProbeStore store;
  for (std::uint32_t seq = 0; seq < 3000; ++seq) store.add(make_reading(seq));
  std::set<std::uint32_t> partial;
  for (std::uint32_t seq = 0; seq < 2600; ++seq) partial.insert(seq);
  EXPECT_EQ(store.confirm_delivered(partial), 2600u);
  EXPECT_EQ(store.pending_count(), 400u);  // tomorrow's work
}

}  // namespace
}  // namespace gw::proto
