// End-to-end coherence of the frame codec with the lossy link: stream
// encoded reading frames through per-bit corruption, count CRC rejections
// as the "broken data packets" the paper's base station records alongside
// outright losses (§V: "records missing or broken data packets").
#include <gtest/gtest.h>

#include "proto/probe_frames.h"
#include "proto/probe_link.h"
#include "util/rng.h"

namespace gw::proto {
namespace {

TEST(FramesOverLink, CorruptionAlwaysDetectedNeverAccepted) {
  util::Rng rng{5};
  int rejected = 0;
  constexpr int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) {
    ProbeReading reading;
    reading.probe_id = 21;
    reading.seq = std::uint32_t(i);
    reading.conductivity_us = 1.0 + 0.1 * rng.normal();
    auto wire = encode_reading_frame(reading);
    // 13% of frames take a bit flip somewhere (summer-grade corruption).
    if (rng.bernoulli(0.13)) {
      const auto byte = rng.uniform_index(wire.size());
      const auto bit = rng.uniform_index(8);
      wire[byte] = std::uint8_t(wire[byte] ^ (1u << bit));
      const auto decoded = decode_frame(wire);
      if (!decoded.ok()) {
        ++rejected;
        continue;
      }
      // A flip in the payload MUST have been caught by the CRC; a surviving
      // decode can only mean the flip landed... nowhere. Fail loudly.
      FAIL() << "corrupted frame accepted at frame " << i;
    }
    const auto decoded = decode_frame(wire);
    ASSERT_TRUE(decoded.ok());
    const auto parsed = parse_reading(decoded.value().payload);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().seq, std::uint32_t(i));
  }
  // The corruption rate seen by the receiver matches what was injected.
  EXPECT_NEAR(rejected / double(kFrames), 0.13, 0.025);
}

TEST(FramesOverLink, BrokenFramesBehaveLikeMissingOnes) {
  // The §V algorithm treats a CRC-rejected frame exactly like a lost one:
  // its sequence number lands on the re-request list. Simulate one stream
  // and verify the bookkeeping matches the NACK protocol's model.
  env::TemperatureModel temperature{env::TemperatureConfig{}, util::Rng{1}};
  env::MeltModel melt{env::MeltConfig{}, util::Rng{2}};
  ProbeLink link{melt, temperature, util::Rng{3}};
  util::Rng corruption{4};

  const auto when = sim::at_midnight(2009, 2, 1);
  std::set<std::uint32_t> received;
  constexpr std::uint32_t kCount = 1000;
  for (std::uint32_t seq = 0; seq < kCount; ++seq) {
    ProbeReading reading;
    reading.probe_id = 21;
    reading.seq = seq;
    auto wire = encode_reading_frame(reading);
    if (!link.packet_survives(when)) continue;  // lost outright
    if (corruption.bernoulli(0.01)) {           // arrives broken
      wire[20] ^= 0x04;
    }
    const auto decoded = decode_frame(wire);
    if (!decoded.ok()) continue;  // recorded as broken -> re-request
    received.insert(decoded.value().seq);
  }
  const std::size_t missing = kCount - received.size();
  // Winter loss ~2% plus ~1% corruption: ~3% on the re-request list.
  EXPECT_NEAR(double(missing) / kCount, 0.03, 0.015);
}

}  // namespace
}  // namespace gw::proto
