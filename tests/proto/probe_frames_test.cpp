#include "proto/probe_frames.h"

#include <gtest/gtest.h>

namespace gw::proto {
namespace {

ProbeReading sample_reading() {
  ProbeReading reading;
  reading.probe_id = 24;
  reading.seq = 1234567;
  reading.sampled_ms = 1233100800000;  // 2009-01-28
  reading.conductivity_us = 7.125;
  reading.pressure_kpa = 812.5;
  reading.tilt_deg = -1.75;
  reading.temperature_c = -0.41;
  return reading;
}

TEST(ProbeFrames, ReadingPayloadRoundTrip) {
  const auto reading = sample_reading();
  const auto payload = serialize_reading(reading);
  EXPECT_EQ(payload.size(), std::size_t(kReadingPayload.count()));
  const auto parsed = parse_reading(payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().probe_id, reading.probe_id);
  EXPECT_EQ(parsed.value().seq, reading.seq);
  EXPECT_EQ(parsed.value().sampled_ms, reading.sampled_ms);
  EXPECT_DOUBLE_EQ(parsed.value().conductivity_us, reading.conductivity_us);
  EXPECT_DOUBLE_EQ(parsed.value().pressure_kpa, reading.pressure_kpa);
  EXPECT_DOUBLE_EQ(parsed.value().tilt_deg, reading.tilt_deg);
  EXPECT_DOUBLE_EQ(parsed.value().temperature_c, reading.temperature_c);
}

TEST(ProbeFrames, FrameRoundTrip) {
  const auto wire = encode_reading_frame(sample_reading());
  const auto decoded = decode_frame(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, FrameType::kReadingData);
  EXPECT_EQ(decoded.value().probe_id, 24);
  EXPECT_EQ(decoded.value().seq, 1234567u);
  const auto parsed = parse_reading(decoded.value().payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value().conductivity_us, 7.125);
}

TEST(ProbeFrames, WireSizesMatchProtocolConstants) {
  // The §V protocol arithmetic (bulk_transfer) uses these constants; the
  // codec is their source of truth.
  EXPECT_EQ(encode_reading_frame(sample_reading()).size(),
            std::size_t(kReadingWireSize.count()));
  EXPECT_EQ(encode_resend_request(24, 99).size(),
            std::size_t(kRequestWireSize.count()));
  EXPECT_EQ(encode_ack(24, 99).size(), std::size_t(kAckWireSize.count()));
  EXPECT_EQ(kHeaderBytes + kTrailerBytes,
            std::size_t(kFrameOverhead.count()));
}

TEST(ProbeFrames, CrcDetectsCorruption) {
  auto wire = encode_reading_frame(sample_reading());
  for (const std::size_t index :
       {std::size_t{0}, std::size_t{5}, std::size_t{20}, wire.size() - 1}) {
    auto corrupted = wire;
    corrupted[index] ^= 0x10;
    EXPECT_FALSE(decode_frame(corrupted).ok()) << "byte " << index;
  }
}

TEST(ProbeFrames, TruncationRejected) {
  const auto wire = encode_reading_frame(sample_reading());
  EXPECT_FALSE(
      decode_frame(std::span<const std::uint8_t>(wire.data(), 10)).ok());
  EXPECT_FALSE(
      decode_frame(std::span<const std::uint8_t>(wire.data(), wire.size() - 1))
          .ok());
  EXPECT_FALSE(decode_frame({}).ok());
}

TEST(ProbeFrames, WrongPayloadSizeRejected) {
  std::vector<std::uint8_t> short_payload(10, 0);
  EXPECT_FALSE(parse_reading(short_payload).ok());
}

TEST(ProbeFrames, RequestAndAckDecode) {
  const auto request = decode_frame(encode_resend_request(21, 404));
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request.value().type, FrameType::kResendRequest);
  EXPECT_EQ(request.value().seq, 404u);

  const auto ack = decode_frame(encode_ack(21, 7));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value().type, FrameType::kAck);
  EXPECT_EQ(ack.value().probe_id, 21);
}

TEST(ProbeFrames, NegativeAndExtremeValuesSurvive) {
  ProbeReading reading;
  reading.probe_id = 65535;
  reading.seq = 0xffffffffu;
  reading.sampled_ms = -1;
  reading.conductivity_us = 0.0;
  reading.pressure_kpa = 1e9;
  reading.tilt_deg = -180.0;
  reading.temperature_c = -273.15;
  const auto parsed = parse_reading(serialize_reading(reading));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().seq, 0xffffffffu);
  EXPECT_EQ(parsed.value().sampled_ms, -1);
  EXPECT_DOUBLE_EQ(parsed.value().pressure_kpa, 1e9);
}

}  // namespace
}  // namespace gw::proto
