// Codec property tests for every control-plane and read-API message type:
//   * encode -> decode round-trips losslessly;
//   * flipping ANY single byte of the wire makes decode fail (the CRC-32
//     envelope catches all single-byte damage, and structural bytes like
//     '#'/'='/'&' degrade into typed parse errors, never silent garbage);
//   * a CRC-valid wire with malformed fields fails the *typed* decode —
//     the strict from_chars integer parse refuses "42xyz" where the old
//     std::stoll would have shrugged and returned 42.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "proto/messages.h"

namespace gw::proto {
namespace {

// Every message type's encoder, exercised through one representative
// instance, paired with a checker that the decode both succeeds and
// round-trips the fields.
std::vector<std::pair<std::string, std::string>> sample_wires() {
  std::vector<std::pair<std::string, std::string>> wires;
  StateReport report;
  report.station = "base";
  report.state = power::PowerState::kState2;
  report.day_ms = 43200000;
  wires.emplace_back("state_report", report.encode());
  OverrideRequest override_request;
  override_request.station = "reference";
  wires.emplace_back("override_request", override_request.encode());
  OverrideResponse override_response;
  override_response.has_override = true;
  override_response.state = power::PowerState::kState1;
  wires.emplace_back("override_response", override_response.encode());
  wires.emplace_back("dir_request", DirectoryRequest{}.encode());
  DirectoryResponse directory;
  directory.stations = {"base", "reference", "weather"};
  wires.emplace_back("dir_response", directory.encode());
  StationStatsRequest stats_request;
  stats_request.station = "base";
  wires.emplace_back("stats_request", stats_request.encode());
  StationStatsResponse stats_response;
  stats_response.station = "base";
  stats_response.known = true;
  stats_response.files = 130;
  stats_response.bytes = 21790720;
  stats_response.beacons = 4;
  wires.emplace_back("stats_response", stats_response.encode());
  GroupStatusRequest group_request;
  group_request.group = "dgps";
  wires.emplace_back("group_request", group_request.encode());
  GroupStatusResponse group_response;
  group_response.group = "dgps";
  group_response.members = 2;
  group_response.fresh = 2;
  group_response.converged = true;
  group_response.state = power::PowerState::kState3;
  wires.emplace_back("group_response", group_response.encode());
  QueryError error;
  error.reason = "bad_wire";
  wires.emplace_back("error", error.encode());
  return wires;
}

// Typed decode of `wire` as the message named `type`; true iff it decoded.
bool typed_decode_ok(const std::string& type, const std::string& wire) {
  if (type == "state_report") return StateReport::decode(wire).ok();
  if (type == "override_request") return OverrideRequest::decode(wire).ok();
  if (type == "override_response") return OverrideResponse::decode(wire).ok();
  if (type == "dir_request") return DirectoryRequest::decode(wire).ok();
  if (type == "dir_response") return DirectoryResponse::decode(wire).ok();
  if (type == "stats_request") return StationStatsRequest::decode(wire).ok();
  if (type == "stats_response") {
    return StationStatsResponse::decode(wire).ok();
  }
  if (type == "group_request") return GroupStatusRequest::decode(wire).ok();
  if (type == "group_response") return GroupStatusResponse::decode(wire).ok();
  if (type == "error") return QueryError::decode(wire).ok();
  ADD_FAILURE() << "unknown message type " << type;
  return false;
}

TEST(MessagesProperty, EveryTypeRoundTrips) {
  for (const auto& [type, wire] : sample_wires()) {
    EXPECT_TRUE(typed_decode_ok(type, wire)) << type;
  }
  // Spot-check field fidelity on the richest types.
  StationStatsResponse stats;
  stats.station = "base";
  stats.known = true;
  stats.files = 130;
  stats.bytes = 21790720;
  stats.beacons = 4;
  const auto stats_back = StationStatsResponse::decode(stats.encode());
  ASSERT_TRUE(stats_back.ok());
  EXPECT_EQ(stats_back.value().station, "base");
  EXPECT_TRUE(stats_back.value().known);
  EXPECT_EQ(stats_back.value().files, 130);
  EXPECT_EQ(stats_back.value().bytes, 21790720);
  EXPECT_EQ(stats_back.value().beacons, 4);
  DirectoryResponse directory;
  directory.stations = {"base", "reference", "weather"};
  const auto directory_back = DirectoryResponse::decode(directory.encode());
  ASSERT_TRUE(directory_back.ok());
  EXPECT_EQ(directory_back.value().stations, directory.stations);
}

TEST(MessagesProperty, FlippingAnyByteBreaksDecode) {
  for (const auto& [type, wire] : sample_wires()) {
    for (std::size_t i = 0; i < wire.size(); ++i) {
      std::string damaged = wire;
      damaged[i] = char(damaged[i] ^ 0x01);
      EXPECT_FALSE(typed_decode_ok(type, damaged))
          << type << ": flip at byte " << i << " survived: " << damaged;
    }
  }
}

TEST(MessagesProperty, TruncationBreaksDecode) {
  for (const auto& [type, wire] : sample_wires()) {
    for (const std::size_t keep : {wire.size() - 1, wire.size() / 2,
                                   std::size_t{0}}) {
      EXPECT_FALSE(typed_decode_ok(type, wire.substr(0, keep)))
          << type << ": truncated to " << keep;
    }
  }
}

// A CRC-valid envelope whose *fields* are wrong must fail the typed
// decode: re-encoding through Form produces a fresh, valid CRC, so only
// the field validation stands between a malformed value and the ledger.
TEST(MessagesProperty, CrcValidButMalformedFieldsFailTypedDecode) {
  // Trailing garbage on a numeric field: the strict parse refuses it.
  Form half_numeric;
  half_numeric.set("msg", "state_report");
  half_numeric.set("station", "base");
  half_numeric.set("state", "2xyz");
  half_numeric.set("rtc_ms", "1000");
  EXPECT_FALSE(StateReport::decode(half_numeric.encode()).ok());

  // Missing required field.
  Form missing;
  missing.set("msg", "state_report");
  missing.set("station", "base");
  missing.set("state", "2");
  EXPECT_FALSE(StateReport::decode(missing.encode()).ok());

  // Wrong message tag for the decoder invoked.
  Form wrong_tag;
  wrong_tag.set("msg", "override_request");
  wrong_tag.set("station", "base");
  EXPECT_FALSE(StateReport::decode(wrong_tag.encode()).ok());

  // Directory count lies high: the decode must not chase phantom fields.
  Form overcount;
  overcount.set("msg", "dir_response");
  overcount.set_int("n", 3);
  overcount.set("s0", "base");
  EXPECT_FALSE(DirectoryResponse::decode(overcount.encode()).ok());

  // Negative and absurd counts are refused outright.
  Form negative;
  negative.set("msg", "dir_response");
  negative.set_int("n", -1);
  EXPECT_FALSE(DirectoryResponse::decode(negative.encode()).ok());
  Form absurd;
  absurd.set("msg", "dir_response");
  absurd.set_int("n", kMaxDirectoryStations + 1);
  EXPECT_FALSE(DirectoryResponse::decode(absurd.encode()).ok());

  // Non-numeric stats: every numeric field goes through the strict parse.
  Form stats;
  stats.set("msg", "stats_response");
  stats.set("station", "base");
  stats.set("known", "1");
  stats.set("files", "130 ");  // trailing space
  stats.set("bytes", "+9000");  // '+' is not part of the wire grammar
  stats.set("beacons", "4");
  EXPECT_FALSE(StationStatsResponse::decode(stats.encode()).ok());
}

}  // namespace
}  // namespace gw::proto
