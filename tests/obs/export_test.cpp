#include "obs/export.h"

#include <gtest/gtest.h>

#include <memory>

#include "obs/journal.h"
#include "obs/metrics.h"

namespace gw::obs {
namespace {

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(RegistryJson, EmitsSortedMetrics) {
  MetricsRegistry registry;
  registry.counter("z", "last").increment(2);
  registry.counter("a", "first").increment();
  registry.gauge("power", "battery_soc").set(0.5);
  const std::string json = registry_json(registry);
  EXPECT_EQ(json,
            "{\"counters\":["
            "{\"metric\":\"a.first\",\"value\":1},"
            "{\"metric\":\"z.last\",\"value\":2}],"
            "\"gauges\":["
            "{\"metric\":\"power.battery_soc\",\"value\":0.5}],"
            "\"histograms\":[]}");
}

TEST(RegistryJson, HistogramBucketsIncludeOverflowAsInf) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("h", "x", {1.0, 2.0});
  histogram.observe(0.5);
  histogram.observe(99.0);
  const std::string json = registry_json(registry);
  EXPECT_NE(json.find("\"buckets\":[{\"le\":1,\"count\":1},"
                      "{\"le\":2,\"count\":0},"
                      "{\"le\":\"inf\",\"count\":1}]"),
            std::string::npos)
      << json;
}

TEST(BenchReportJson, FullShape) {
  MetricsRegistry registry;
  registry.counter("station", "wakes").increment(7);
  EventJournal journal;
  journal.record(1000, EventType::kColdBoot, "station", 1);

  BenchReport report;
  report.bench = "unit";
  report.meta = {{"paper", "Fig 5"}, {"seed", "2008"}};
  report.sections = {{"base", &registry, &journal}};
  report.series = {{"base.voltage", {{0, 12.5}, {1800000, 12.625}}}};

  EXPECT_EQ(to_json(report),
            "{\"schema\":\"glacsweb.bench.v1\",\"bench\":\"unit\","
            "\"meta\":{\"paper\":\"Fig 5\",\"seed\":\"2008\"},"
            "\"sections\":[{\"name\":\"base\","
            "\"counters\":[{\"metric\":\"station.wakes\",\"value\":7}],"
            "\"gauges\":[],\"histograms\":[],"
            "\"events\":{\"total\":1,\"dropped\":0,"
            "\"records\":[{\"t_ms\":1000,\"type\":\"cold_boot\","
            "\"component\":\"station\",\"a\":1,\"b\":0}]}}],"
            "\"series\":[{\"name\":\"base.voltage\","
            "\"points\":[[0,12.5],[1800000,12.625]]}]}");
}

TEST(BenchReportJson, NullSectionPointersRenderEmpty) {
  BenchReport report;
  report.bench = "empty";
  report.sections = {{"nothing", nullptr, nullptr}};
  EXPECT_EQ(to_json(report),
            "{\"schema\":\"glacsweb.bench.v1\",\"bench\":\"empty\","
            "\"meta\":{},"
            "\"sections\":[{\"name\":\"nothing\","
            "\"counters\":[],\"gauges\":[],\"histograms\":[]}],"
            "\"series\":[]}");
}

TEST(BenchReportJson, DeterministicAcrossIdenticalBuilds) {
  const auto build = [] {
    auto registry = std::make_unique<MetricsRegistry>();
    // Insertion order differs run to run here; export order must not.
    registry->counter("b", "two").increment(2);
    registry->counter("a", "one").increment(1);
    registry->histogram("a", "h", {1.0}).observe(0.25);
    return registry;
  };
  const auto first = build();
  const auto second = build();
  EXPECT_EQ(registry_json(*first), registry_json(*second));
}

TEST(RegistryCsv, OneRowPerMetric) {
  MetricsRegistry registry;
  registry.counter("station", "wakes").increment(3);
  registry.gauge("power", "battery_soc").set(0.875);
  registry.histogram("station", "run_seconds", {60.0}).observe(30.0);
  EXPECT_EQ(registry_csv(registry),
            "kind,component,name,value,count,sum,min,max\n"
            "counter,station,wakes,3,,,,\n"
            "gauge,power,battery_soc,0.875,,,,\n"
            "histogram,station,run_seconds,,1,30,30,30\n");
}

TEST(SeriesCsv, OneRowPerPoint) {
  const std::vector<Series> series = {{"v", {{0, 1.5}, {1000, 2.5}}}};
  EXPECT_EQ(series_csv(series),
            "series,time_ms,value\n"
            "v,0,1.5\n"
            "v,1000,2.5\n");
}

}  // namespace
}  // namespace gw::obs
