#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace gw::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.increment();
  counter.increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, LastWriteWinsAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.set(12.6);
  gauge.set(11.9);  // gauges may fall
  EXPECT_DOUBLE_EQ(gauge.value(), 11.9);
  gauge.add(0.1);
  EXPECT_DOUBLE_EQ(gauge.value(), 12.0);
}

TEST(Histogram, BucketsObservations) {
  Histogram histogram{{1.0, 10.0, 100.0}};
  histogram.observe(0.5);    // bucket 0 (<= 1)
  histogram.observe(1.0);    // bucket 0 (boundary is inclusive)
  histogram.observe(5.0);    // bucket 1
  histogram.observe(100.0);  // bucket 2
  histogram.observe(1e6);    // overflow

  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 1e6);
  ASSERT_EQ(histogram.counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(histogram.counts()[0], 2u);
  EXPECT_EQ(histogram.counts()[1], 1u);
  EXPECT_EQ(histogram.counts()[2], 1u);
  EXPECT_EQ(histogram.counts()[3], 1u);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  Histogram histogram{{1.0}};
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0);  // not +inf
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);  // not -inf
}

TEST(MetricsRegistry, LookupOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter& frames = registry.counter("bulk_transfer", "data_frames");
  frames.increment(3);
  // Grow the registry; the cached handle must stay valid (node-based map).
  for (int i = 0; i < 100; ++i) {
    registry.counter("c", "n" + std::to_string(i));
  }
  Counter& again = registry.counter("bulk_transfer", "data_frames");
  EXPECT_EQ(&frames, &again);
  EXPECT_EQ(frames.value(), 3u);
}

TEST(MetricsRegistry, HistogramBoundsFixedAtFirstCreation) {
  MetricsRegistry registry;
  Histogram& first = registry.histogram("station", "run_seconds", {1.0, 2.0});
  // A later lookup with different (or default) bounds returns the original.
  Histogram& second = registry.histogram("station", "run_seconds", {99.0});
  EXPECT_EQ(&first, &second);
  ASSERT_EQ(second.upper_bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(second.upper_bounds()[0], 1.0);
}

TEST(MetricsRegistry, HistogramDefaultsToSecondsBuckets) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("station", "run_seconds");
  EXPECT_EQ(histogram.upper_bounds(),
            Histogram::default_seconds_buckets());
}

TEST(MetricsRegistry, AbsentMetricsReadAsZeroWithoutCreating) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter_value("nope", "nothing"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("nope", "nothing"), 0.0);
  EXPECT_EQ(registry.find_counter("nope", "nothing"), nullptr);
  EXPECT_EQ(registry.find_gauge("nope", "nothing"), nullptr);
  EXPECT_EQ(registry.find_histogram("nope", "nothing"), nullptr);
  EXPECT_EQ(registry.size(), 0u);  // the read side must not create
}

TEST(MetricsRegistry, IterationIsOrderedByComponentThenName) {
  MetricsRegistry registry;
  registry.counter("z", "a");
  registry.counter("a", "z");
  registry.counter("a", "a");
  std::vector<std::string> order;
  for (const auto& [key, counter] : registry.counters()) {
    order.push_back(key.full_name());
  }
  EXPECT_EQ(order, (std::vector<std::string>{"a.a", "a.z", "z.a"}));
}

TEST(ScopedTimer, ObservesElapsedOnDestruction) {
  double now = 10.0;
  const auto clock = [](void* ctx) { return *static_cast<double*>(ctx); };
  Histogram histogram{{1.0, 10.0}};
  {
    ScopedTimer timer{histogram, clock, &now};
    now = 12.5;
  }
  ASSERT_EQ(histogram.count(), 1u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 2.5);
}

}  // namespace
}  // namespace gw::obs
