#include "obs/journal.h"

#include <gtest/gtest.h>

namespace gw::obs {
namespace {

TEST(EventJournal, RecordsTypedEventsInOrder) {
  EventJournal journal;
  journal.record(1000, EventType::kStateTransition, "station", 2, 3);
  journal.record(2000, EventType::kBrownOut, "power", 1);
  ASSERT_EQ(journal.size(), 2u);
  const Event& first = journal.events().front();
  EXPECT_EQ(first.time_ms, 1000);
  EXPECT_EQ(first.type, EventType::kStateTransition);
  EXPECT_EQ(first.component, "station");
  EXPECT_DOUBLE_EQ(first.a, 2.0);
  EXPECT_DOUBLE_EQ(first.b, 3.0);
  EXPECT_EQ(journal.events().back().type, EventType::kBrownOut);
}

TEST(EventJournal, CountAndOfTypeFilter) {
  EventJournal journal;
  journal.record(1, EventType::kRetransmitRound, "bulk_transfer", 1, 400);
  journal.record(2, EventType::kRetransmitRound, "bulk_transfer", 2, 60);
  journal.record(3, EventType::kSessionAborted, "bulk_transfer", 60);
  EXPECT_EQ(journal.count(EventType::kRetransmitRound), 2u);
  EXPECT_EQ(journal.count(EventType::kColdBoot), 0u);
  const auto rounds = journal.of_type(EventType::kRetransmitRound);
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_DOUBLE_EQ(rounds[1].b, 60.0);
}

TEST(EventJournal, CapacityDropsOldestAndCounts) {
  EventJournal journal{3};
  for (int i = 0; i < 5; ++i) {
    journal.record(i, EventType::kColdBoot, "station", i);
  }
  EXPECT_EQ(journal.size(), 3u);
  EXPECT_EQ(journal.total_recorded(), 5u);
  EXPECT_EQ(journal.dropped(), 2u);
  // Oldest went first: the survivors are records 2, 3, 4.
  EXPECT_EQ(journal.events().front().time_ms, 2);
  EXPECT_EQ(journal.events().back().time_ms, 4);
}

TEST(EventJournal, EveryTypeHasAStableName) {
  // The to_string names are part of the glacsweb.bench.v1 schema
  // (docs/OBSERVABILITY.md); renaming one is a breaking change.
  EXPECT_STREQ(to_string(EventType::kStateTransition), "state_transition");
  EXPECT_STREQ(to_string(EventType::kSyncClamp), "sync_clamp");
  EXPECT_STREQ(to_string(EventType::kRecoveryResync), "recovery_resync");
  EXPECT_STREQ(to_string(EventType::kRecoveryDeferred), "recovery_deferred");
  EXPECT_STREQ(to_string(EventType::kWatchdogExpiry), "watchdog_expiry");
  EXPECT_STREQ(to_string(EventType::kRetransmitRound), "retransmit_round");
  EXPECT_STREQ(to_string(EventType::kSessionAborted), "session_aborted");
  EXPECT_STREQ(to_string(EventType::kBrownOut), "brown_out");
  EXPECT_STREQ(to_string(EventType::kPowerRestored), "power_restored");
  EXPECT_STREQ(to_string(EventType::kColdBoot), "cold_boot");
  EXPECT_STREQ(to_string(EventType::kWindowExhausted), "window_exhausted");
  EXPECT_STREQ(to_string(EventType::kFutureReport), "future_report");
  EXPECT_STREQ(to_string(EventType::kIngestRejected), "ingest_rejected");
}

TEST(Hooks, DefaultIsUninstrumented) {
  Hooks hooks;
  EXPECT_EQ(hooks.metrics, nullptr);
  EXPECT_EQ(hooks.journal, nullptr);
}

}  // namespace
}  // namespace gw::obs
