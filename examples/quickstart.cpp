// Quickstart: assemble the full Glacsweb Iceland deployment — glacier base
// station, café reference station, Southampton server, seven subglacial
// probes — run it for 30 simulated days, and read the ledgers.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "station/deployment.h"

int main() {
  using namespace gw;

  station::DeploymentConfig config;
  config.seed = 2008;
  config.start = sim::DateTime{2008, 9, 1, 0, 0, 0};  // the field season

  station::Deployment deployment{config};
  deployment.run_days(30.0);

  std::printf("Glacsweb deployment after 30 days (from %s)\n\n",
              sim::format_iso(sim::to_time(config.start)).c_str());

  for (auto* s : {&deployment.base(), &deployment.reference()}) {
    const auto& stats = s->stats();
    std::printf("[%s station]\n", s->name().c_str());
    std::printf("  power state now: %d, battery SoC %.0f%%\n",
                core::to_int(s->current_state()),
                100.0 * s->power().battery().soc());
    std::printf("  daily runs: %d completed, %d aborted by watchdog\n",
                stats.runs_completed, stats.runs_aborted);
    std::printf("  dGPS files fetched: %d\n", stats.gps_files_fetched);
    std::printf("  GPRS: %.2f MiB sent, %d sessions, %d failures, cost %.2f\n",
                s->gprs().bytes_sent().mib(), s->gprs().sessions_attempted(),
                s->gprs().registration_failures(), s->gprs().data_cost());
    std::printf("  energy harvested: %.1f Wh, consumed: %.1f Wh\n",
                s->power().total_harvested().value() / 3600.0,
                s->power().total_consumed().value() / 3600.0);
    if (s->config().role == station::StationRole::kBaseStation) {
      std::printf("  probe readings retrieved: %zu\n",
                  stats.probe_readings_delivered);
    }
    std::printf("\n");
  }

  std::printf("[Southampton server]\n");
  std::printf("  files received: %d from base, %d from reference\n",
              deployment.server().files_from("base"),
              deployment.server().files_from("reference"));
  std::printf("  data volume: %.2f MiB from base, %.2f MiB from reference\n",
              deployment.server().bytes_from("base").mib(),
              deployment.server().bytes_from("reference").mib());

  std::printf("\n[probes]\n  alive: %d/7\n", deployment.probes_alive());
  for (const auto& probe : deployment.probes()) {
    std::printf("  probe %d: %s, %u readings sampled, %zu delivered\n",
                probe->id(), probe->alive() ? "alive" : "offline",
                probe->readings_sampled(), probe->store().delivered_total());
  }
  return 0;
}
