// Winter survival: the scenario the whole design exists for (§I, §III).
//
// The stations "have to be capable of surviving a long winter (Dec–March)
// by minimising their tasks": snow buries the solar panel and eventually
// the wind turbine, harvest collapses, and the voltage-driven power states
// shed the dGPS and finally all communications. This example runs October
// through May and prints a monthly log of harvest, battery, power state and
// delivered data — then repeats the winter with the power policy disabled
// (pinned to state 3) to show why adaptation matters.
#include <cstdio>

#include "station/deployment.h"

namespace {

struct MonthRow {
  int year;
  int month;
  double harvest_wh = 0.0;
  double consumed_wh = 0.0;
  double soc_end = 0.0;
  int state_end = 0;
  int files = 0;
};

void run_winter(bool adaptive) {
  using namespace gw;
  station::DeploymentConfig config;
  config.seed = 77;
  config.start = sim::DateTime{2008, 10, 1, 0, 0, 0};
  if (!adaptive) {
    // Ablation: pin the policy so every daily average maps to state 3 —
    // on BOTH stations, or the server's min rule would re-impose the
    // healthy station's adaptive state on the pinned one.
    for (auto* station_config : {&config.base, &config.reference}) {
      station_config->policy.state3_threshold = util::Volts{0.0};
      station_config->policy.state2_threshold = util::Volts{0.0};
      station_config->policy.state1_threshold = util::Volts{0.0};
      station_config->initial_state = core::PowerState::kState3;
    }
  }
  config.trace_enabled = false;
  station::Deployment deployment{config};

  std::printf("\n%s winter (base station):\n",
              adaptive ? "ADAPTIVE (Table 2 policy)" : "PINNED STATE 3");
  std::printf("  %-8s %9s %10s %7s %6s %6s %11s\n", "month", "harvestWh",
              "consumedWh", "SoC", "state", "files", "brown-outs");

  double prev_harvest = 0.0;
  double prev_consumed = 0.0;
  int prev_files = 0;
  for (int month_index = 0; month_index < 8; ++month_index) {
    const auto now = deployment.simulation().now();
    const auto dt = sim::to_datetime(now);
    // Run to the start of the next month.
    int year = dt.year;
    int month = dt.month + 1;
    if (month > 12) {
      month = 1;
      ++year;
    }
    deployment.simulation().run_until(sim::at_midnight(year, month, 1));

    auto& base = deployment.base();
    const double harvest = base.power().total_harvested().value() / 3600.0;
    const double consumed = base.power().total_consumed().value() / 3600.0;
    const int files = deployment.server().files_from("base");
    std::printf("  %04d-%02d  %9.1f %10.1f %6.0f%% %6d %6d %11d\n", dt.year,
                dt.month, harvest - prev_harvest, consumed - prev_consumed,
                100.0 * base.power().battery().soc(),
                core::to_int(base.current_state()), files - prev_files,
                base.stats().brown_outs);
    prev_harvest = harvest;
    prev_consumed = consumed;
    prev_files = files;
  }

  const auto& stats = deployment.base().stats();
  std::printf(
      "  => runs completed %d, aborted %d, brown-outs %d, cold boots %d, "
      "probe readings %zu\n",
      stats.runs_completed, stats.runs_aborted, stats.brown_outs,
      stats.cold_boots, stats.probe_readings_delivered);
}

}  // namespace

int main() {
  std::printf("Winter survival, October 2008 - May 2009 (Vatnajokull)\n");
  run_winter(/*adaptive=*/true);
  run_winter(/*adaptive=*/false);
  std::printf(
      "\nThe adaptive policy sheds the dGPS (states 2->1) and finally GPRS "
      "(state 0)\nas harvest collapses; the pinned station spends 12 dGPS "
      "readings a day into a\ndead battery and brown-outs follow (Sec III).\n");
  return 0;
}
