// Probe data recovery after months offline — the §V war story.
//
// "there were lessons to be learnt about base station design due to the
// large quantity of data they transmitted after months offline. This was
// due to the base station being damaged by deep snow ... With 3000 readings
// being sent in the summer, across the weakest link (due to summer water)
// 400 missed packets were common. Fetching that many individual readings
// was never considered in the testing phase and the process could fail.
// Fortunately the task was not marked as complete in the probes; so many
// missing readings were obtained in subsequent days."
//
// This example replays that episode end to end: a probe accumulates a
// 125-day backlog while the base station is down, then the repaired station
// fetches it across successive summer windows — first with the deployed
// firmware's individual-fetch limit, then with the fixed firmware.
#include <cstdio>

#include "proto/bulk_transfer.h"
#include "station/probe_node.h"

namespace {

void replay(bool deployed_firmware) {
  using namespace gw;
  sim::Simulation simulation{sim::at_midnight(2009, 3, 1)};
  env::Environment environment{2009};

  station::ProbeNodeConfig probe_config;
  probe_config.probe_id = 21;
  probe_config.weibull_scale_days = 5000.0;  // survives the episode
  station::ProbeNode probe{simulation, environment, util::Rng{21},
                           probe_config};

  // The base station is buried by deep snow from March to early July:
  // the probe keeps sampling hourly into its store.
  simulation.run_until(sim::at_midnight(2009, 7, 4));
  std::printf("\n%s firmware:\n",
              deployed_firmware ? "DEPLOYED (individual-fetch limit)"
                                : "FIXED (no limit)");
  std::printf("  backlog after the outage: %zu readings\n",
              probe.store().pending_count());

  proto::NackConfig protocol_config;
  if (deployed_firmware) protocol_config.legacy_individual_limit = 100;
  proto::NackBulkTransfer protocol{probe.link(), protocol_config};

  int day = 0;
  std::size_t total = 0;
  while (probe.store().pending_count() > 30 && day < 14) {
    const auto window = simulation.now() + sim::hours(12);
    const auto stats =
        protocol.run(probe.store(), window, sim::minutes(30));
    total += stats.delivered;
    std::printf(
        "  window %2d: streamed, %4zu missed%s; delivered %4zu "
        "(%5.1f min airtime), pending %5zu\n",
        day + 1, stats.missing_after_stream,
        stats.aborted ? " [individual fetch FAILED as in Sec V]" : "",
        stats.delivered, stats.airtime.to_minutes(),
        probe.store().pending_count());
    simulation.run_until(simulation.now() + sim::days(1));
    ++day;
  }
  std::printf("  => %zu readings recovered over %d daily windows; "
              "nothing lost (task-completion semantics)\n",
              total, day);
}

}  // namespace

int main() {
  std::printf(
      "Sec V replay: bulk fetch after the base station spent spring buried "
      "in snow\n");
  replay(/*deployed_firmware=*/true);
  replay(/*deployed_firmware=*/false);
  return 0;
}
