// What-if branching: snapshot a live season, then ask "what if the GPRS
// link had died next week?" without re-running the shared prefix
// (docs/SNAPSHOT.md).
//
// The deployment runs a scripted early-summer season to day 20 and seals a
// snapshot. Branch A carries the live world on to day 40 unchanged; branch
// B restores the same snapshot into a fresh deployment, layers an extra
// hard GPRS outage on top (day 22, six days), and runs the same 20 days.
// Both end as FieldReports, and the diff between them is the operator's
// answer: what the outage would have cost in delivered files, backlog and
// battery.
#include <cstdio>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "station/deployment.h"
#include "station/field_report.h"

namespace {

gw::station::DeploymentConfig season_config() {
  gw::station::DeploymentConfig config;
  config.seed = 2008;
  config.start = gw::sim::DateTime{2008, 6, 1, 0, 0, 0};
  config.trace_enabled = false;
  // A scripted season so both branches share real adversity before the
  // what-if window (docs/FAULTS.md).
  config.fault_spec =
      "gprs_outage start=5d  duration=3d severity=1.0\n"
      "server_down start=12d duration=12h\n";
  return config;
}

struct BranchSummary {
  int files = 0;
  std::size_t backlog = 0;
  int brown_outs = 0;
  int probes_alive = 0;
};

BranchSummary summarize(gw::station::Deployment& deployment) {
  BranchSummary summary;
  summary.files = deployment.server().files_from("base");
  summary.backlog = deployment.base().uploads().queued_files();
  summary.brown_outs = deployment.base().stats().brown_outs;
  summary.probes_alive = deployment.probes_alive();
  return summary;
}

}  // namespace

int main() {
  using namespace gw;

  const sim::SimTime start = sim::to_time(season_config().start);
  // 17 minutes past the day-20 boundary: off every wake window and fault
  // edge, so the checkpoint lands on a quiescent fleet.
  const sim::SimTime branch_point = start + sim::days(20) + sim::minutes(17);
  const sim::SimTime season_end = start + sim::days(40);

  // Shared prefix: one live season to the branch point, sealed.
  station::Deployment flown{season_config()};
  flown.simulation().run_until(branch_point);
  const std::vector<std::uint8_t> snapshot = flown.fleet().save_snapshot();
  std::printf("sealed day-20 snapshot: %zu bytes\n\n", snapshot.size());

  // Branch A: the season as flown, straight on to day 40.
  flown.simulation().run_until(season_end);

  // Branch B: same bytes, plus the what-if — a hard six-day GPRS outage
  // starting day 22. Fault windows are config-side, so the restored world
  // accepts the extra window without disturbing a byte of shared state.
  station::Deployment what_if{season_config()};
  what_if.fleet().restore_snapshot(snapshot);
  fault::FaultWindow outage;
  outage.kind = fault::FaultKind::kGprsOutage;
  outage.start = sim::days(22);
  outage.duration = sim::days(6);
  outage.severity = 1.0;
  what_if.fault_oracle().add_window(outage);
  what_if.simulation().run_until(season_end);

  std::printf("=== branch A: season as flown ===\n%s\n",
              station::FieldReport{flown}.render().c_str());
  std::printf("=== branch B: +6d GPRS outage from day 22 ===\n%s\n",
              station::FieldReport{what_if}.render().c_str());

  const BranchSummary a = summarize(flown);
  const BranchSummary b = summarize(what_if);
  std::printf("=== what the outage would have cost ===\n");
  std::printf("  %-22s %10s %10s %8s\n", "", "as flown", "what-if", "delta");
  std::printf("  %-22s %10d %10d %+8d\n", "files delivered", a.files,
              b.files, b.files - a.files);
  std::printf("  %-22s %10zu %10zu %+8d\n", "upload backlog", a.backlog,
              b.backlog, int(b.backlog) - int(a.backlog));
  std::printf("  %-22s %10d %10d %+8d\n", "brown-outs", a.brown_outs,
              b.brown_outs, b.brown_outs - a.brown_outs);
  std::printf("  %-22s %10d %10d %+8d\n", "probes alive", a.probes_alive,
              b.probes_alive, b.probes_alive - a.probes_alive);
  return 0;
}
