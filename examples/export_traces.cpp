// Trace exporter: run the deployment over a calendar window and emit the
// Fig 5 / Fig 6 raw series as CSV — ready for gnuplot/matplotlib to render
// the figures exactly as published.
//
//   export_traces fig5 > fig5.csv    # 30-min voltage+state, Sep 2009
//   export_traces fig6 > fig6.csv    # conductivity, Jan-Apr 2009
//   export_traces year > year.csv    # a full year of everything
#include <cstdio>
#include <cstring>

#include "station/deployment.h"

namespace {

using namespace gw;

void emit_csv(station::Deployment& deployment,
              const std::vector<std::string>& series, sim::SimTime from,
              sim::SimTime to) {
  std::printf("utc");
  for (const auto& name : series) std::printf(",%s", name.c_str());
  std::printf("\n");
  const auto& trace = deployment.trace();
  // All series share the 30-min sampling grid; walk the first one.
  for (const auto& point : trace.series(series.front())) {
    if (point.time < from || point.time >= to) continue;
    std::printf("%s", sim::format_iso(point.time).c_str());
    for (const auto& name : series) {
      std::printf(",%.4f", trace.value_at(name, point.time));
    }
    std::printf("\n");
  }
}

int run_fig5() {
  station::DeploymentConfig config;
  config.start = sim::DateTime{2009, 9, 15, 0, 0, 0};
  config.base.power.battery.initial_soc = 0.97;
  config.base.initial_state = core::PowerState::kState2;
  config.reference.initial_state = core::PowerState::kState2;
  station::Deployment deployment{config};
  deployment.server().sync().set_manual_override(core::PowerState::kState2);
  deployment.simulation().schedule_at(
      sim::to_time({2009, 9, 23, 13, 0, 0}), [&deployment] {
        deployment.server().sync().set_manual_override(std::nullopt);
      });
  deployment.run_days(11.0);
  emit_csv(deployment, {"base.voltage", "base.state"},
           sim::at_midnight(2009, 9, 22), sim::at_midnight(2009, 9, 26));
  return 0;
}

int run_fig6() {
  station::DeploymentConfig config;
  config.start = sim::DateTime{2009, 1, 20, 0, 0, 0};
  station::Deployment deployment{config};
  deployment.run_days(95.0);
  emit_csv(deployment,
           {"probe21.conductivity", "probe24.conductivity",
            "probe25.conductivity"},
           sim::at_midnight(2009, 1, 27), sim::at_midnight(2009, 4, 22));
  return 0;
}

int run_year() {
  station::DeploymentConfig config;
  config.start = sim::DateTime{2008, 9, 1, 0, 0, 0};
  station::Deployment deployment{config};
  deployment.run_days(365.0);
  emit_csv(deployment,
           {"base.voltage", "base.state", "base.soc", "reference.voltage",
            "reference.state", "reference.soc"},
           sim::at_midnight(2008, 9, 1), sim::at_midnight(2009, 9, 1));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "fig5") == 0) return run_fig5();
  if (argc == 2 && std::strcmp(argv[1], "fig6") == 0) return run_fig6();
  if (argc == 2 && std::strcmp(argv[1], "year") == 0) return run_year();
  std::fprintf(stderr, "usage: %s fig5|fig6|year  (CSV on stdout)\n",
               argv[0]);
  return 1;
}
