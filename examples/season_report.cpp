// Season report: run the deployment across a full year (field season to
// field season) and print the operator's summary — the view of the system
// the paper's own evaluation is written from.
//
// Optional argv[1]: number of days (default 365).
#include <cstdio>
#include <cstdlib>

#include "station/deployment.h"
#include "station/field_report.h"

int main(int argc, char** argv) {
  using namespace gw;

  double days = 365.0;
  if (argc > 1) days = std::atof(argv[1]);
  if (days <= 0.0 || days > 2000.0) {
    std::fprintf(stderr, "usage: %s [days 1..2000]\n", argv[0]);
    return 1;
  }

  station::DeploymentConfig config;
  config.seed = 2008;
  config.start = sim::DateTime{2008, 9, 1, 0, 0, 0};
  config.trace_enabled = false;
  // The §VII extension earns its keep over a winter.
  config.base.enable_data_priority = true;

  station::Deployment deployment{config};
  deployment.run_days(days);

  station::FieldReport report{deployment};
  std::fputs(report.render().c_str(), stdout);

  // Monthly power-state strip chart for the base station, built from the
  // state history — the at-a-glance survival picture.
  std::printf("[base station power-state history]\n");
  const auto start = sim::to_time(config.start);
  for (int day = 0; day < int(days); day += 7) {
    const auto week_start = start + sim::days(day);
    int state = core::to_int(deployment.base().current_state());
    // Walk the history for the state in effect at week start.
    for (const auto& change : deployment.base().state_history()) {
      if (change.at <= week_start) state = core::to_int(change.state);
    }
    if (day % 28 == 0) {
      std::printf("\n  %s ", sim::format_iso(week_start).substr(0, 10).c_str());
    }
    std::printf("%d", state);
  }
  std::printf("\n  (one digit per week: Table 2 power state)\n");
  return 0;
}
