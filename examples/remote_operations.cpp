// Remote operations: running an unreachable station from Southampton.
//
// The deployment's operational toolkit (§III, §V, §VI) in one session:
//   * manual power-state override — hold the stations down, release them;
//   * "special" command scripts — and the 24/48-hour result latency the
//     deployed ordering imposes, versus the reordered fix;
//   * checksummed code updates with the immediate HTTP-GET MD5 beacon.
#include <cstdio>

#include "station/deployment.h"
#include "util/md5.h"

int main() {
  using namespace gw;

  station::DeploymentConfig config;
  config.seed = 7;
  config.start = sim::DateTime{2009, 6, 1, 0, 0, 0};
  config.base.power.battery.initial_soc = 1.0;
  config.reference.power.battery.initial_soc = 1.0;
  config.trace_enabled = false;
  station::Deployment deployment{config};
  auto& server = deployment.server();

  std::printf("Remote operations session, June 2009\n\n");

  // --- 1. manual override --------------------------------------------------
  std::printf("1. Holding both stations in state 2 by manual override\n");
  server.sync().set_manual_override(core::PowerState::kState2);
  deployment.run_days(3.0);
  std::printf("   day 3: base state %d, reference state %d\n",
              core::to_int(deployment.base().current_state()),
              core::to_int(deployment.reference().current_state()));
  server.sync().set_manual_override(std::nullopt);
  deployment.run_days(2.0);
  std::printf("   released: base state %d, reference state %d\n\n",
              core::to_int(deployment.base().current_state()),
              core::to_int(deployment.reference().current_state()));

  // --- 2. special command ---------------------------------------------------
  std::printf("2. Queueing a diagnostic script for the base station\n");
  server.queue_special("base",
                       {.id = "disk-check", .script = "df -h; dmesg | tail"});
  deployment.run_days(2.0);
  for (const auto& result : server.special_results()) {
    std::printf(
        "   %s executed %s; results visible in Southampton %s (%.0f h "
        "later)\n",
        result.id.c_str(), sim::format_iso(result.executed_at).c_str(),
        sim::format_iso(result.results_visible_at).c_str(),
        (result.results_visible_at - result.executed_at).to_hours());
  }
  std::printf("   (Sec VI: output rides the next day's log upload; acting on "
              "it takes ~48 h)\n\n");

  // --- 3. code update -------------------------------------------------------
  std::printf("3. Shipping a code update with MD5 verification\n");
  core::UpdatePackage package;
  package.name = "basestation.py";
  package.payload = std::string(6000, 'v') + "# v2.1";
  package.expected_md5 = util::Md5::hex_digest(package.payload);
  server.queue_update("base", package);
  deployment.run_days(3.0);
  for (const auto& timed : server.beacons()) {
    std::printf("   beacon @ %s: %s\n",
                sim::format_iso(timed.at).c_str(),
                timed.beacon.http_get().c_str());
  }
  std::printf("   installed on station: %s\n",
              deployment.base().updates().has("basestation.py") ? "yes"
                                                                : "no");
  std::printf("   update stats: %d downloads, %d installs, %d rejected "
              "(corrupted in transit)\n",
              deployment.base().updates().downloads(),
              deployment.base().updates().installs(),
              deployment.base().updates().rejections());
  return 0;
}
